//! Hand-rolled JSON construction and parsing — no serde, no external
//! crates.
//!
//! The observability layer must stay inside the workspace's offline
//! build gate, so artifacts and JSONL events are serialized by this
//! writer instead of a serialization framework. Objects keep their
//! insertion order, which makes every emitted document
//! byte-deterministic for a given input. [`JsonValue::parse`] is the
//! matching recursive-descent reader (used by the campaign daemon's
//! wire protocol and cache spill files): it accepts exactly the JSON
//! grammar, reports structured [`JsonError`]s with byte offsets, and
//! round-trips everything this module writes.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Maximum nesting depth [`JsonValue::parse`] accepts, bounding the
/// parser's recursion on adversarial input.
pub const MAX_PARSE_DEPTH: usize = 128;

/// A JSON value with deterministic (insertion-ordered) objects.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A finite float. Non-finite values serialize as `null` (JSON has
    /// no NaN/Infinity).
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::push`].
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Appends a key/value pair to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("push on non-object JSON value {other:?}"),
        }
        self
    }

    /// Serializes to a compact, single-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Serializes with two-space indentation (for human-read artifacts).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => write_float(out, *f),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_into(out),
        }
    }
}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the problem and its byte offset.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON document"));
        }
        Ok(value)
    }

    /// The value under `key` if `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(f) => Some(*f),
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The element slice, if `self` is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// A JSON parse failure: what went wrong and the byte offset at which
/// the parser gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input at the point of failure.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal (expected '{word}')")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.error("nesting deeper than MAX_PARSE_DEPTH"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((unit as u32 - 0xD800) << 10) + (low as u32 - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                unit as u32
                            };
                            match char::from_u32(scalar) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                c if c < 0x20 => return Err(self.error("raw control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy it through.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.error("truncated \\u escape"));
            };
            let digit = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return Err(self.error("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | digit as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[start + negative as usize] == b'0' {
            return Err(self.error("leading zero in number"));
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !float {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(JsonValue::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError { message: "invalid number".into(), offset: start })
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected digits"));
        }
        Ok(self.pos - start)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Floats print with enough precision to round-trip (`{:?}` on f64 is
/// the shortest representation that parses back exactly); non-finite
/// values become `null`.
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::Bool(true).to_json(), "true");
        assert_eq!(JsonValue::Int(-3).to_json(), "-3");
        assert_eq!(JsonValue::UInt(u64::MAX).to_json(), "18446744073709551615");
        assert_eq!(JsonValue::Float(0.5).to_json(), "0.5");
        assert_eq!(JsonValue::Float(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn strings_escape_control_and_quote_characters() {
        let v = JsonValue::from("a\"b\\c\nd\te\r\u{1}");
        assert_eq!(v.to_json(), "\"a\\\"b\\\\c\\nd\\te\\r\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v = JsonValue::object()
            .push("zebra", 1u64)
            .push("alpha", 2u64)
            .push("nested", JsonValue::from(vec![1i64, 2, 3]));
        assert_eq!(v.to_json(), "{\"zebra\":1,\"alpha\":2,\"nested\":[1,2,3]}");
    }

    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(JsonValue::Float(0.1).to_json(), "0.1");
        assert_eq!(JsonValue::Float(1.0).to_json(), "1.0");
        assert_eq!(JsonValue::Float(1e300).to_json(), "1e300");
    }

    #[test]
    fn pretty_output_is_indented_and_parses_the_same_shape() {
        let v = JsonValue::object()
            .push("a", 1u64)
            .push("b", JsonValue::Array(vec![JsonValue::Bool(false)]));
        let pretty = v.to_json_pretty();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert!(pretty.ends_with("}\n"));
        // Empty containers stay compact.
        assert_eq!(JsonValue::object().to_json_pretty(), "{}\n");
        assert_eq!(JsonValue::Array(vec![]).to_json_pretty(), "[]\n");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_on_array_panics() {
        let _ = JsonValue::Array(vec![]).push("k", 1u64);
    }

    #[test]
    fn parse_round_trips_written_documents() {
        let v = JsonValue::object()
            .push("name", "LFSR-D")
            .push("count", 4096u64)
            .push("neg", -17i64)
            .push("ratio", 0.125)
            .push("flag", true)
            .push("nothing", JsonValue::Null)
            .push("list", JsonValue::from(vec![1u64, 2, 3]))
            .push("nested", JsonValue::object().push("k", "v\n\"q\""));
        let compact = v.to_json();
        assert_eq!(JsonValue::parse(&compact).unwrap(), v);
        // Pretty output parses back to the same value too.
        assert_eq!(JsonValue::parse(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::UInt(42));
        assert_eq!(JsonValue::parse("-42").unwrap(), JsonValue::Int(-42));
        assert_eq!(JsonValue::parse("0.5").unwrap(), JsonValue::Float(0.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(JsonValue::parse("18446744073709551615").unwrap(), JsonValue::UInt(u64::MAX));
        // Beyond u64 falls back to f64 rather than failing.
        assert!(matches!(JsonValue::parse("184467440737095516150").unwrap(), JsonValue::Float(_)));
        assert!(JsonValue::parse("01").is_err());
        assert!(JsonValue::parse("1.").is_err());
        assert!(JsonValue::parse("-").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        assert_eq!(
            JsonValue::parse("\"a\\\"b\\\\c\\nd\\te\\u0041\"").unwrap(),
            JsonValue::Str("a\"b\\c\nd\teA".into())
        );
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(JsonValue::parse("\"\\ud83d\\ude00\"").unwrap(), JsonValue::Str("😀".into()));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(JsonValue::parse("\"héllo\"").unwrap(), JsonValue::Str("héllo".into()));
        assert!(JsonValue::parse("\"\\ud83d\"").is_err(), "unpaired surrogate");
        assert!(JsonValue::parse("\"\\q\"").is_err(), "bad escape");
        assert!(JsonValue::parse("\"abc").is_err(), "unterminated");
    }

    #[test]
    fn parse_rejects_malformed_documents_with_offsets() {
        for (text, needle) in [
            ("", "end of input"),
            ("{", "expected"),
            ("{\"a\":1,}", "expected"),
            ("[1 2]", "expected ',' or ']'"),
            ("{\"a\" 1}", "expected ':'"),
            ("nul", "invalid literal"),
            ("{} {}", "trailing characters"),
            ("\u{1}", "unexpected character"),
        ] {
            let err = JsonValue::parse(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?}: {err}");
            assert!(err.offset <= text.len());
        }
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        let deep = "[".repeat(MAX_PARSE_DEPTH + 2) + &"]".repeat(MAX_PARSE_DEPTH + 2);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.to_string().contains("MAX_PARSE_DEPTH"), "{err}");
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_select_by_shape() {
        let v = JsonValue::parse("{\"s\":\"x\",\"u\":7,\"i\":-7,\"f\":1.5,\"b\":true,\"a\":[1]}")
            .unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("u").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("i").and_then(JsonValue::as_i64), Some(-7));
        assert_eq!(v.get("i").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("u").and_then(JsonValue::as_f64), Some(7.0));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(JsonValue::as_array).map(<[_]>::len), Some(1));
        assert_eq!(v.as_object().map(<[_]>::len), Some(6));
        assert!(v.get("missing").is_none());
        assert!(JsonValue::Null.get("s").is_none());
    }
}
