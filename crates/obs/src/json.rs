//! Hand-rolled JSON construction — no serde, no external crates.
//!
//! The observability layer must stay inside the workspace's offline
//! build gate, so artifacts and JSONL events are serialized by this
//! ~150-line writer instead of a serialization framework. Objects keep
//! their insertion order, which makes every emitted document
//! byte-deterministic for a given input.

use std::fmt::Write as _;

/// A JSON value with deterministic (insertion-ordered) objects.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A finite float. Non-finite values serialize as `null` (JSON has
    /// no NaN/Infinity).
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::push`].
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Appends a key/value pair to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("push on non-object JSON value {other:?}"),
        }
        self
    }

    /// Serializes to a compact, single-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Serializes with two-space indentation (for human-read artifacts).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => write_float(out, *f),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_into(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Floats print with enough precision to round-trip (`{:?}` on f64 is
/// the shortest representation that parses back exactly); non-finite
/// values become `null`.
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::Bool(true).to_json(), "true");
        assert_eq!(JsonValue::Int(-3).to_json(), "-3");
        assert_eq!(JsonValue::UInt(u64::MAX).to_json(), "18446744073709551615");
        assert_eq!(JsonValue::Float(0.5).to_json(), "0.5");
        assert_eq!(JsonValue::Float(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn strings_escape_control_and_quote_characters() {
        let v = JsonValue::from("a\"b\\c\nd\te\r\u{1}");
        assert_eq!(v.to_json(), "\"a\\\"b\\\\c\\nd\\te\\r\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v = JsonValue::object()
            .push("zebra", 1u64)
            .push("alpha", 2u64)
            .push("nested", JsonValue::from(vec![1i64, 2, 3]));
        assert_eq!(v.to_json(), "{\"zebra\":1,\"alpha\":2,\"nested\":[1,2,3]}");
    }

    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(JsonValue::Float(0.1).to_json(), "0.1");
        assert_eq!(JsonValue::Float(1.0).to_json(), "1.0");
        assert_eq!(JsonValue::Float(1e300).to_json(), "1e300");
    }

    #[test]
    fn pretty_output_is_indented_and_parses_the_same_shape() {
        let v = JsonValue::object()
            .push("a", 1u64)
            .push("b", JsonValue::Array(vec![JsonValue::Bool(false)]));
        let pretty = v.to_json_pretty();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert!(pretty.ends_with("}\n"));
        // Empty containers stay compact.
        assert_eq!(JsonValue::object().to_json_pretty(), "{}\n");
        assert_eq!(JsonValue::Array(vec![]).to_json_pretty(), "[]\n");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_on_array_panics() {
        let _ = JsonValue::Array(vec![]).push("k", 1u64);
    }
}
