//! Fixed-bucket histograms with lock-free recording.
//!
//! Bucket boundaries are chosen at construction and never reallocate,
//! so `record` is a couple of atomic adds — cheap enough to call from
//! every fault-simulation shard without perturbing the measurement.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default bucket upper bounds for wall-clock durations, in
/// milliseconds: sub-millisecond shards up to multi-minute campaigns.
pub const DURATION_MS_BOUNDS: [f64; 16] = [
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
    10_000.0, 30_000.0,
];

/// A fixed-bucket histogram of `f64` samples.
///
/// Tracks per-bucket counts (plus an overflow bucket), the sample
/// count, sum, minimum and maximum. All updates are atomic; `f64`
/// accumulators use compare-and-swap on the bit pattern.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over ascending inclusive upper bounds; a sample
    /// lands in the first bucket whose bound is `>=` the sample, or in
    /// the overflow bucket past the last bound.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not strictly ascending.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// A histogram with the default duration buckets (milliseconds).
    pub fn durations() -> Histogram {
        Histogram::new(&DURATION_MS_BOUNDS)
    }

    /// Records one sample.
    pub fn record(&self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        fetch_update_f64(&self.sum_bits, |s| s + value);
        fetch_update_f64(&self.min_bits, |m| m.min(value));
        fetch_update_f64(&self.max_bits, |m| m.max(value));
    }

    /// A consistent-enough point-in-time copy (individual fields are
    /// read atomically; concurrent recording may skew them by the
    /// in-flight samples, which is fine for reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Atomically folds a snapshot's samples into this histogram
    /// (counts add, extrema extend). Used by `Registry::absorb`.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge_from(&self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "cannot merge histograms with different buckets");
        for (bucket, &n) in self.buckets.iter().zip(&other.counts) {
            bucket.fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        fetch_update_f64(&self.sum_bits, |s| s + other.sum);
        fetch_update_f64(&self.min_bits, |m| m.min(other.min));
        fetch_update_f64(&self.max_bits, |m| m.max(other.max));
    }
}

fn fetch_update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Plain-data copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the last entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean sample value, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges another snapshot's samples into this one (same bounds).
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "cannot merge histograms with different buckets");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_the_right_buckets() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.record(0.5); // bucket 0 (<= 1.0)
        h.record(1.0); // bucket 0 (inclusive upper bound)
        h.record(5.0); // bucket 1
        h.record(1000.0); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 0, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 1000.0);
        assert!((s.sum - 1006.5).abs() < 1e-9);
        assert!((s.mean() - 1006.5 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_has_neutral_summary() {
        let s = Histogram::durations().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min, f64::INFINITY);
        assert_eq!(s.max, f64::NEG_INFINITY);
    }

    #[test]
    fn merge_adds_counts_and_extends_extrema() {
        let a = Histogram::new(&[1.0, 2.0]);
        a.record(0.5);
        let b = Histogram::new(&[1.0, 2.0]);
        b.record(1.5);
        b.record(9.0);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counts, vec![1, 1, 1]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new(&[50.0]);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 * 0.01);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.counts.iter().sum::<u64>(), 4000);
        assert_eq!(s.min, 0.0);
        assert!((s.max - 39.99).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[2.0, 1.0]);
    }
}
