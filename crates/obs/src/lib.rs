//! Zero-dependency observability for the BIST pipeline.
//!
//! The fault-simulation campaigns this workspace runs (the paper's
//! Tables 4–6 and every scaling experiment since) live or die by their
//! quantitative outputs, so the pipeline needs first-class metrics
//! without weakening the fully-offline build gate. This crate provides
//! the whole layer with **no dependencies beyond `std`**:
//!
//! * [`Registry`] — named atomic [`Counter`]s, gauges and fixed-bucket
//!   [`Histogram`]s, shareable across worker threads behind an `Arc`;
//!   snapshots are plain data with sorted, deterministic JSON output.
//! * [`Span`] / [`span!`] — RAII wall-clock timers: one guard per
//!   pipeline phase, recorded into the registry's span log (and a
//!   same-named duration histogram) on drop.
//! * [`JsonValue`] — a hand-rolled JSON writer *and* parser (no serde)
//!   with insertion-ordered objects; the campaign daemon's wire
//!   protocol and cache spill files ride on it.
//! * [`JsonlSink`] — a thread-safe one-JSON-document-per-line event
//!   writer.
//! * [`RunArtifact`] — the structured end-of-run record (coverage,
//!   missed-fault census by difficult-test class, per-stage durations)
//!   that `bench`'s experiments binary aggregates into `BENCH_*.json`
//!   files.
//!
//! Instrumentation is strictly observational: the fault simulator's
//! results stay bit-identical with and without a registry attached.
//!
//! ```
//! use bist_obs::{span, Registry, RunArtifact};
//!
//! let registry = Registry::new();
//! let shards = registry.counter("faultsim.shards");
//! {
//!     let _stage = span!(registry, "faultsim.stage{}", 0);
//!     shards.add(16);
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["faultsim.shards"], 16);
//! assert_eq!(snapshot.spans[0].name, "faultsim.stage0");
//!
//! let mut artifact = RunArtifact::new("LP", "LFSR-D");
//! artifact.coverage = 0.97;
//! assert!(artifact.to_json().to_json().contains("\"coverage\":0.97"));
//! ```

#![forbid(unsafe_code)]

pub mod artifact;
pub mod diag;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;

pub use artifact::{
    CollapseReport, ResidueVerdict, RunArtifact, SatReport, StageTiming, TopOffReport,
    ARTIFACT_SCHEMA,
};
pub use diag::{Diagnostic, Location, Severity};
pub use hist::{Histogram, HistogramSnapshot, DURATION_MS_BOUNDS};
pub use json::{JsonError, JsonValue};
pub use metrics::{Counter, Registry, Snapshot, SpanRecord};
pub use sink::JsonlSink;
pub use span::Span;
