//! Structured end-of-run artifacts.
//!
//! A [`RunArtifact`] is the machine-readable record of one BIST
//! experiment: what was tested, with what resources, and what came out
//! — coverage, the missed-fault census by difficult-test class, and
//! per-stage wall-clock durations. The `bench` experiments binary
//! aggregates these into `BENCH_*.json` files (see `EXPERIMENTS.md`
//! for the schema), which is where the repository's performance
//! trajectory accumulates.

use crate::diag::{self, Diagnostic};
use crate::json::JsonValue;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Version tag written into every artifact, bumped on any
/// backwards-incompatible schema change.
pub const ARTIFACT_SCHEMA: u32 = 1;

/// Wall-clock extent of one named pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name (e.g. `session.fault_sim`).
    pub name: String,
    /// Total milliseconds spent in the stage.
    pub millis: f64,
}

/// One residual fault's top-off verdict, with enough site provenance
/// (node label, cell, full-adder line, polarity) to reason about the
/// fault without re-deriving the universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidueVerdict {
    /// Fault id within the run's universe.
    pub fault: u32,
    /// Label of the adder/subtractor node hosting the fault.
    pub node: String,
    /// Cell (bit) position within the adder, `0` = LSB.
    pub cell: u32,
    /// The faulty full-adder line (e.g. `carry-out`).
    pub line: String,
    /// Polarity: `true` for stuck-at-1, `false` for stuck-at-0.
    pub stuck_one: bool,
    /// `"detected"`, `"untestable"`, `"unresolved"` — or `"redundant"`
    /// when the SAT verdict pass proved an unresolved fault redundant.
    pub verdict: String,
}

/// The outcome of the deterministic top-off stage over one campaign's
/// undetected residue: the verdict partition, the compressed
/// seed/stored-pattern plan's storage accounting, and per-fault
/// verdicts with site provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TopOffReport {
    /// Faults the pre-simulation static screen proved untestable and
    /// removed from the simulated universe.
    pub screened_untestable: usize,
    /// Residual (undetected) faults handed to the top-off stage.
    pub residue: usize,
    /// Residual faults proven unactivatable by justification.
    pub untestable: usize,
    /// Residual faults the verified plan detects.
    pub detected: usize,
    /// Residual faults neither proven untestable nor detected.
    pub unresolved: usize,
    /// Unresolved faults the SAT verdict pass proved redundant
    /// (`0` and absent from the JSON unless the pass reclassified
    /// something, so pre-SAT artifacts stay byte-identical).
    pub redundant: usize,
    /// Stored LFSR seeds in the reseeding plan.
    pub seeds: usize,
    /// Tester storage spent on seeds, in bits.
    pub seed_bits: usize,
    /// Raw fallback patterns stored alongside the seeds.
    pub stored_patterns: usize,
    /// Tester storage spent on raw patterns, in bits.
    pub stored_bits: usize,
    /// Total top-off test length in clock cycles.
    pub total_vectors: usize,
    /// Vectors the LFSR free-runs per loaded seed.
    pub block_len: u32,
    /// Per-fault verdicts in ascending fault-id order.
    pub verdicts: Vec<ResidueVerdict>,
}

impl TopOffReport {
    /// Renders the report as a JSON object (fixed field order).
    pub fn to_json(&self) -> JsonValue {
        let verdicts = JsonValue::Array(
            self.verdicts
                .iter()
                .map(|v| {
                    JsonValue::object()
                        .push("fault", v.fault)
                        .push("node", v.node.as_str())
                        .push("cell", v.cell)
                        .push("line", v.line.as_str())
                        .push("stuck_one", v.stuck_one)
                        .push("verdict", v.verdict.as_str())
                })
                .collect(),
        );
        let head = JsonValue::object()
            .push("screened_untestable", self.screened_untestable)
            .push("residue", self.residue)
            .push("untestable", self.untestable)
            .push("detected", self.detected)
            .push("unresolved", self.unresolved);
        // Key omitted at zero so top-off artifacts from runs without
        // the SAT verdict pass keep their exact historical bytes.
        let head = if self.redundant == 0 { head } else { head.push("redundant", self.redundant) };
        head.push("seeds", self.seeds)
            .push("seed_bits", self.seed_bits)
            .push("stored_patterns", self.stored_patterns)
            .push("stored_bits", self.stored_bits)
            .push("total_vectors", self.total_vectors)
            .push("block_len", self.block_len)
            .push("verdicts", verdicts)
    }
}

/// The outcome of the SAT proof stage: redundancy-pruning counts over
/// the pre-simulation candidate set, witness replay cross-validation,
/// the equivalence-certificate verdict and aggregate solver effort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatReport {
    /// Collapsed fault classes in the universe before pruning.
    pub universe_before: usize,
    /// Faults handed to the redundancy prover.
    pub candidates: usize,
    /// Candidates proven redundant (UNSAT miter at every frame) and
    /// removed from the simulated universe.
    pub redundant_proven: usize,
    /// Candidates the prover found a detecting witness for.
    pub detectable: usize,
    /// Candidates undecided within the conflict budget.
    pub unknown: usize,
    /// SAT witnesses that replayed through the fault simulator as
    /// detections (must equal `detectable`; a shortfall is an
    /// encoder/simulator disagreement).
    pub witnesses_confirmed: usize,
    /// Whether the design/model equivalence certificate was attempted.
    pub equiv_checked: bool,
    /// Whether every equivalence obligation was discharged (always
    /// `false` when unchecked).
    pub equiv_proved: bool,
    /// SAT lemmas discharged by the equivalence certificate.
    pub equiv_lemmas: usize,
    /// Total solver conflicts across all queries.
    pub conflicts: u64,
    /// Total solver decisions across all queries.
    pub decisions: u64,
    /// Total unit propagations across all queries.
    pub propagations: u64,
}

impl SatReport {
    /// Renders the report as a JSON object (fixed field order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .push("universe_before", self.universe_before)
            .push("candidates", self.candidates)
            .push("redundant_proven", self.redundant_proven)
            .push("detectable", self.detectable)
            .push("unknown", self.unknown)
            .push("witnesses_confirmed", self.witnesses_confirmed)
            .push("equiv_checked", self.equiv_checked)
            .push("equiv_proved", self.equiv_proved)
            .push("equiv_lemmas", self.equiv_lemmas)
            .push("conflicts", self.conflicts)
            .push("decisions", self.decisions)
            .push("propagations", self.propagations)
    }
}

/// The outcome of the structural-analysis stage: collapse census over
/// the screened fault universe, graph shape, and the SCOAP testability
/// aggregates. Produced by the `structure` crate and attached to the
/// artifact when the run was configured with structural collapsing.
#[derive(Debug, Clone, PartialEq)]
pub struct CollapseReport {
    /// Gates in the expanded gate graph.
    pub gates: usize,
    /// Deepest combinational level.
    pub max_level: u32,
    /// Fanout-free regions.
    pub ffr_count: usize,
    /// Depth of the post-dominator tree.
    pub dominator_depth: u32,
    /// Raw per-line stuck-at universe of the active cells (the
    /// classical collapse-ratio denominator).
    pub raw_lines: usize,
    /// Member faults of the analyzed (mask-screened) universe.
    pub screened_faults: usize,
    /// Fault classes before structural collapsing.
    pub sites_before: usize,
    /// Fault classes after structural collapsing (what was simulated).
    pub classes_after: usize,
    /// Classes surviving the dominance census.
    pub prime_classes: usize,
    /// Classes marked dominated (reported, still simulated).
    pub dominated_classes: usize,
    /// `1 - prime_classes / raw_lines`.
    pub reduction_vs_raw: f64,
    /// `1 - classes_after / sites_before` (the simulation speedup).
    pub reduction_vs_sites: f64,
    /// Worst finite SCOAP 0-controllability over cell outputs.
    pub scoap_max_cc0: u32,
    /// Worst finite SCOAP 1-controllability over cell outputs.
    pub scoap_max_cc1: u32,
    /// Worst finite SCOAP observability over cell outputs.
    pub scoap_max_co: u32,
    /// Cells whose output is structurally unobservable.
    pub scoap_unobservable_cells: usize,
    /// Histogram of cell observabilities: bucket `k` counts cells with
    /// `CO` in `[2^k, 2^(k+1))`.
    pub scoap_co_histogram: Vec<usize>,
}

impl CollapseReport {
    /// Renders the report as a JSON object (fixed field order).
    pub fn to_json(&self) -> JsonValue {
        let histogram =
            JsonValue::Array(self.scoap_co_histogram.iter().map(|&c| (c as u64).into()).collect());
        JsonValue::object()
            .push("gates", self.gates)
            .push("max_level", self.max_level)
            .push("ffr_count", self.ffr_count)
            .push("dominator_depth", self.dominator_depth)
            .push("raw_lines", self.raw_lines)
            .push("screened_faults", self.screened_faults)
            .push("sites_before", self.sites_before)
            .push("classes_after", self.classes_after)
            .push("prime_classes", self.prime_classes)
            .push("dominated_classes", self.dominated_classes)
            .push("reduction_vs_raw", self.reduction_vs_raw)
            .push("reduction_vs_sites", self.reduction_vs_sites)
            .push(
                "scoap",
                JsonValue::object()
                    .push("max_cc0", self.scoap_max_cc0)
                    .push("max_cc1", self.scoap_max_cc1)
                    .push("max_co", self.scoap_max_co)
                    .push("unobservable_cells", self.scoap_unobservable_cells)
                    .push("co_histogram", histogram),
            )
    }
}

/// The structured outcome of one BIST run.
///
/// All fields are public plain data: the session layer fills them in,
/// examples print [`RunArtifact::summary`], and the bench harness
/// serializes [`RunArtifact::to_json`] into `BENCH_*.json` files.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifact {
    /// Artifact schema version ([`ARTIFACT_SCHEMA`]).
    pub schema: u32,
    /// The design under test.
    pub design: String,
    /// The test-pattern generator's display name.
    pub generator: String,
    /// Test length in vectors.
    pub vectors: u32,
    /// Worker threads the fault simulator actually used.
    pub threads: usize,
    /// Collapsed fault classes in the universe.
    pub total_faults: usize,
    /// Faults detected by the test.
    pub detected: usize,
    /// Faults missed by the test.
    pub missed: usize,
    /// Final fault coverage in `[0, 1]`.
    pub coverage: f64,
    /// Missed faults detectable by each difficult test class
    /// (`T1`/`T2`/`T5`/`T6`, paper Table 2). A fault detectable by
    /// several classes counts toward each, so the census answers
    /// "which difficult tests would have caught the residue?".
    pub missed_by_class: Vec<(String, usize)>,
    /// Good-machine MISR signature.
    pub signature: u64,
    /// The response-check mode (`"trace"` direct compare or
    /// `"signature"` MISR compaction).
    pub mode: String,
    /// Compare-detected faults whose end-of-test signature collided
    /// with the fault-free one (always `0` in trace mode; expected `0`
    /// for a well-sized MISR in signature mode).
    pub aliased: usize,
    /// Peak response-storage footprint in words: the materialized
    /// fault-free trace (`vectors`) in trace mode, one signature per
    /// bit-sliced lane (`64`) in signature mode.
    pub response_store_words: u64,
    /// Per-stage wall-clock durations, in pipeline order.
    pub stages: Vec<StageTiming>,
    /// Engine counters (shards simulated, stage repacks, ...), sorted
    /// by name.
    pub counters: Vec<(String, u64)>,
    /// Static-analysis diagnostics attached at admission time (empty
    /// when the run was not linted).
    pub lint: Vec<Diagnostic>,
    /// Deterministic top-off outcome, present only when the run was
    /// configured with the ATPG top-off stage.
    pub topoff: Option<TopOffReport>,
    /// SAT proof-stage outcome, present only when the run was
    /// configured with the SAT pruning stage.
    pub sat: Option<SatReport>,
    /// Structural-analysis outcome, present only when the run was
    /// configured with structural fault collapsing.
    pub collapse: Option<CollapseReport>,
}

impl RunArtifact {
    /// An artifact with everything except identity zeroed; callers fill
    /// in the measured fields.
    pub fn new(design: impl Into<String>, generator: impl Into<String>) -> RunArtifact {
        RunArtifact {
            schema: ARTIFACT_SCHEMA,
            design: design.into(),
            generator: generator.into(),
            vectors: 0,
            threads: 0,
            total_faults: 0,
            detected: 0,
            missed: 0,
            coverage: 0.0,
            missed_by_class: Vec::new(),
            signature: 0,
            mode: "trace".to_string(),
            aliased: 0,
            response_store_words: 0,
            stages: Vec::new(),
            counters: Vec::new(),
            lint: Vec::new(),
            topoff: None,
            sat: None,
            collapse: None,
        }
    }

    /// Renders the artifact as a JSON object (field order fixed by the
    /// schema, so output is byte-deterministic).
    pub fn to_json(&self) -> JsonValue {
        let classes =
            self.missed_by_class.iter().fold(JsonValue::object(), |o, (k, v)| o.push(k, *v));
        let stages = JsonValue::Array(
            self.stages
                .iter()
                .map(|s| JsonValue::object().push("name", s.name.as_str()).push("ms", s.millis))
                .collect(),
        );
        let counters = self.counters.iter().fold(JsonValue::object(), |o, (k, v)| o.push(k, *v));
        let base = JsonValue::object()
            .push("schema", self.schema)
            .push("design", self.design.as_str())
            .push("generator", self.generator.as_str())
            .push("vectors", self.vectors)
            .push("threads", self.threads)
            .push("total_faults", self.total_faults)
            .push("detected", self.detected)
            .push("missed", self.missed)
            .push("coverage", self.coverage)
            .push("missed_by_class", classes)
            .push("signature", self.signature)
            .push("mode", self.mode.as_str())
            .push("aliased", self.aliased)
            .push("response_store_words", self.response_store_words)
            .push("stages", stages)
            .push("counters", counters)
            .push("lint", diag::diagnostics_to_json(&self.lint));
        // Optional-stage keys are omitted entirely when absent, so
        // artifacts from runs without them stay byte-identical to
        // schema 1.
        let base = match &self.topoff {
            None => base,
            Some(report) => base.push("topoff", report.to_json()),
        };
        let base = match &self.sat {
            None => base,
            Some(report) => base.push("sat", report.to_json()),
        };
        match &self.collapse {
            None => base,
            Some(report) => base.push("collapse", report.to_json()),
        }
    }

    /// Writes the artifact as a pretty-printed standalone JSON file.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_json_pretty())
    }

    /// A compact human-readable block for examples and logs:
    ///
    /// ```text
    /// LFSR-D on demo-lp: coverage 97.34% (4203/4318, 115 missed) after 2048 vectors, 8 threads
    ///   missed by class: T1 60, T2 10, T5 25, T6 20
    ///   stages: session.patterns 1.2 ms, session.fault_sim 431.0 ms
    /// ```
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{} on {}: coverage {:.2}% ({}/{}, {} missed) after {} vectors, {} thread{}",
            self.generator,
            self.design,
            100.0 * self.coverage,
            self.detected,
            self.total_faults,
            self.missed,
            self.vectors,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        );
        if self.mode == "signature" {
            let _ = write!(out, ", signature mode ({} aliased)", self.aliased);
        }
        if !self.missed_by_class.is_empty() {
            let _ = write!(out, "\n  missed by class:");
            for (i, (class, n)) in self.missed_by_class.iter().enumerate() {
                let _ = write!(out, "{} {class} {n}", if i == 0 { "" } else { "," });
            }
        }
        if !self.stages.is_empty() {
            let _ = write!(out, "\n  stages:");
            for (i, stage) in self.stages.iter().enumerate() {
                let _ = write!(
                    out,
                    "{} {} {:.1} ms",
                    if i == 0 { "" } else { "," },
                    stage.name,
                    stage.millis
                );
            }
        }
        if !self.lint.is_empty() {
            let (errors, warns, infos) = diag::severity_counts(&self.lint);
            let _ = write!(out, "\n  lint: {errors} error(s), {warns} warning(s), {infos} info");
        }
        if let Some(t) = &self.topoff {
            let redundant = if t.redundant == 0 {
                String::new()
            } else {
                format!(", {} redundant", t.redundant)
            };
            let _ = write!(
                out,
                "\n  top-off: {} residual ({} detected, {} untestable, {} unresolved{}), \
                 {} seed(s) + {} stored = {} bits, {} screened pre-sim",
                t.residue,
                t.detected,
                t.untestable,
                t.unresolved,
                redundant,
                t.seeds,
                t.stored_patterns,
                t.seed_bits + t.stored_bits,
                t.screened_untestable,
            );
        }
        if let Some(s) = &self.sat {
            let _ = write!(
                out,
                "\n  sat: {}/{} candidates proven redundant (universe {} -> {}), \
                 {} witnesses confirmed, {} conflicts",
                s.redundant_proven,
                s.candidates,
                s.universe_before,
                s.universe_before - s.redundant_proven,
                s.witnesses_confirmed,
                s.conflicts,
            );
            if s.equiv_checked {
                let _ = write!(
                    out,
                    "; equivalence {} ({} lemmas)",
                    if s.equiv_proved { "proved" } else { "REFUTED" },
                    s.equiv_lemmas,
                );
            }
        }
        if let Some(c) = &self.collapse {
            let _ = write!(
                out,
                "\n  collapse: {} raw lines -> {} classes ({} prime, {:.1}% reduction), \
                 {} simulated ({:.1}% fewer machines)",
                c.raw_lines,
                c.classes_after,
                c.prime_classes,
                100.0 * c.reduction_vs_raw,
                c.classes_after,
                100.0 * c.reduction_vs_sites,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunArtifact {
        let mut a = RunArtifact::new("LP", "LFSR-D");
        a.vectors = 4096;
        a.threads = 4;
        a.total_faults = 1000;
        a.detected = 950;
        a.missed = 50;
        a.coverage = 0.95;
        a.missed_by_class =
            vec![("T1".into(), 30), ("T2".into(), 5), ("T5".into(), 10), ("T6".into(), 5)];
        a.signature = 0xBEEF;
        a.mode = "signature".into();
        a.aliased = 2;
        a.response_store_words = 64;
        a.stages = vec![
            StageTiming { name: "session.patterns".into(), millis: 1.25 },
            StageTiming { name: "session.fault_sim".into(), millis: 250.5 },
        ];
        a.counters = vec![("faultsim.shards".into(), 16)];
        a.lint = vec![Diagnostic::new(
            "L201",
            crate::diag::Severity::Error,
            crate::diag::Location::Design,
            "generator spectrally incompatible",
        )];
        a
    }

    #[test]
    fn json_contains_the_full_schema() {
        let json = sample().to_json().to_json();
        for needle in [
            "\"schema\":1",
            "\"design\":\"LP\"",
            "\"generator\":\"LFSR-D\"",
            "\"vectors\":4096",
            "\"threads\":4",
            "\"coverage\":0.95",
            "\"missed_by_class\":{\"T1\":30,\"T2\":5,\"T5\":10,\"T6\":5}",
            "\"signature\":48879",
            "\"mode\":\"signature\"",
            "\"aliased\":2",
            "\"response_store_words\":64",
            "\"stages\":[{\"name\":\"session.patterns\",\"ms\":1.25}",
            "\"counters\":{\"faultsim.shards\":16}",
            "\"lint\":[{\"code\":\"L201\",\"severity\":\"error\",",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn summary_is_one_readable_block() {
        let s = sample().summary();
        assert!(s.starts_with("LFSR-D on LP: coverage 95.00% (950/1000, 50 missed)"), "{s}");
        assert!(s.contains("after 4096 vectors, 4 threads"), "{s}");
        assert!(s.contains("signature mode (2 aliased)"), "{s}");
        assert!(s.contains("missed by class: T1 30, T2 5, T5 10, T6 5"), "{s}");
        assert!(s.contains("stages: session.patterns 1.2 ms, session.fault_sim 250.5 ms"), "{s}");
        assert!(s.contains("lint: 1 error(s), 0 warning(s), 0 info"), "{s}");
    }

    #[test]
    fn write_json_emits_parseable_pretty_file() {
        let path = std::env::temp_dir().join("bist_obs_artifact_test.json");
        sample().write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\n  \"schema\": 1"), "{text}");
        assert!(text.ends_with("}\n"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn new_artifact_is_identity_plus_zeros() {
        let a = RunArtifact::new("D", "G");
        assert_eq!(a.schema, ARTIFACT_SCHEMA);
        assert_eq!(a.coverage, 0.0);
        assert!(a.stages.is_empty());
        assert_eq!(a.mode, "trace");
        assert_eq!(a.aliased, 0);
        assert_eq!(a.topoff, None);
        let s = a.summary();
        assert!(s.contains("0 threads"), "{s}");
        assert!(!s.contains("signature mode"), "trace summaries stay unchanged: {s}");
    }

    fn sample_topoff() -> TopOffReport {
        TopOffReport {
            screened_untestable: 3,
            residue: 5,
            untestable: 1,
            detected: 4,
            unresolved: 0,
            redundant: 0,
            seeds: 2,
            seed_bits: 24,
            stored_patterns: 1,
            stored_bits: 36,
            total_vectors: 515,
            block_len: 256,
            verdicts: vec![
                ResidueVerdict {
                    fault: 7,
                    node: "tap3.acc".into(),
                    cell: 11,
                    line: "carry-out".into(),
                    stuck_one: true,
                    verdict: "detected".into(),
                },
                ResidueVerdict {
                    fault: 9,
                    node: "tap5.mul".into(),
                    cell: 0,
                    line: "sum".into(),
                    stuck_one: false,
                    verdict: "untestable".into(),
                },
            ],
        }
    }

    #[test]
    fn topoff_key_is_absent_without_the_stage_and_complete_with_it() {
        let without = sample().to_json().to_json();
        assert!(!without.contains("topoff"), "runs without the stage stay schema-1: {without}");
        let mut a = sample();
        a.topoff = Some(sample_topoff());
        let json = a.to_json().to_json();
        for needle in [
            "\"topoff\":{\"screened_untestable\":3",
            "\"residue\":5",
            "\"untestable\":1",
            "\"unresolved\":0",
            "\"seeds\":2",
            "\"seed_bits\":24",
            "\"stored_patterns\":1",
            "\"stored_bits\":36",
            "\"total_vectors\":515",
            "\"block_len\":256",
            "\"verdicts\":[{\"fault\":7,\"node\":\"tap3.acc\",\"cell\":11,\
             \"line\":\"carry-out\",\"stuck_one\":true,\"verdict\":\"detected\"}",
            "{\"fault\":9,\"node\":\"tap5.mul\",\"cell\":0,\
             \"line\":\"sum\",\"stuck_one\":false,\"verdict\":\"untestable\"}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn topoff_summary_line_reports_the_partition_and_storage() {
        let mut a = sample();
        a.topoff = Some(sample_topoff());
        let s = a.summary();
        assert!(
            s.contains(
                "top-off: 5 residual (4 detected, 1 untestable, 0 unresolved), \
                 2 seed(s) + 1 stored = 60 bits, 3 screened pre-sim"
            ),
            "{s}"
        );
    }

    fn sample_sat() -> SatReport {
        SatReport {
            universe_before: 1000,
            candidates: 12,
            redundant_proven: 9,
            detectable: 2,
            unknown: 1,
            witnesses_confirmed: 2,
            equiv_checked: true,
            equiv_proved: true,
            equiv_lemmas: 52,
            conflicts: 314,
            decisions: 2718,
            propagations: 16180,
        }
    }

    #[test]
    fn sat_key_is_absent_without_the_stage_and_complete_with_it() {
        let without = sample().to_json().to_json();
        assert!(!without.contains("\"sat\""), "runs without the stage stay schema-1: {without}");
        let mut a = sample();
        a.sat = Some(sample_sat());
        let json = a.to_json().to_json();
        for needle in [
            "\"sat\":{\"universe_before\":1000",
            "\"candidates\":12",
            "\"redundant_proven\":9",
            "\"detectable\":2",
            "\"unknown\":1",
            "\"witnesses_confirmed\":2",
            "\"equiv_checked\":true",
            "\"equiv_proved\":true",
            "\"equiv_lemmas\":52",
            "\"conflicts\":314",
            "\"decisions\":2718",
            "\"propagations\":16180",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn sat_summary_line_reports_pruning_and_the_certificate() {
        let mut a = sample();
        a.sat = Some(sample_sat());
        let s = a.summary();
        assert!(
            s.contains(
                "sat: 9/12 candidates proven redundant (universe 1000 -> 991), \
                 2 witnesses confirmed, 314 conflicts; equivalence proved (52 lemmas)"
            ),
            "{s}"
        );
        let mut refuted = sample_sat();
        refuted.equiv_proved = false;
        a.sat = Some(refuted);
        assert!(a.summary().contains("equivalence REFUTED"), "{}", a.summary());
    }

    fn sample_collapse() -> CollapseReport {
        CollapseReport {
            gates: 5000,
            max_level: 40,
            ffr_count: 900,
            dominator_depth: 45,
            raw_lines: 57478,
            screened_faults: 55686,
            sites_before: 43181,
            classes_after: 38400,
            prime_classes: 33737,
            dominated_classes: 4663,
            reduction_vs_raw: 0.413,
            reduction_vs_sites: 0.111,
            scoap_max_cc0: 9,
            scoap_max_cc1: 21,
            scoap_max_co: 33,
            scoap_unobservable_cells: 0,
            scoap_co_histogram: vec![1, 4, 16],
        }
    }

    #[test]
    fn collapse_key_is_absent_without_the_stage_and_complete_with_it() {
        let without = sample().to_json().to_json();
        assert!(!without.contains("collapse"), "runs without the stage stay schema-1: {without}");
        let mut a = sample();
        a.collapse = Some(sample_collapse());
        let json = a.to_json().to_json();
        for needle in [
            "\"collapse\":{\"gates\":5000",
            "\"raw_lines\":57478",
            "\"screened_faults\":55686",
            "\"sites_before\":43181",
            "\"classes_after\":38400",
            "\"prime_classes\":33737",
            "\"dominated_classes\":4663",
            "\"reduction_vs_raw\":0.413",
            "\"scoap\":{\"max_cc0\":9",
            "\"co_histogram\":[1,4,16]",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let s = a.summary();
        assert!(
            s.contains("collapse: 57478 raw lines -> 38400 classes (33737 prime, 41.3% reduction)"),
            "{s}"
        );
    }

    #[test]
    fn redundant_partition_is_zero_silent_and_visible_when_populated() {
        let zero = sample_topoff().to_json().to_json();
        assert!(!zero.contains("redundant"), "zero stays byte-identical: {zero}");
        let mut t = sample_topoff();
        t.unresolved = 0;
        t.redundant = 1;
        t.verdicts[1].verdict = "redundant".into();
        let json = t.to_json().to_json();
        assert!(json.contains("\"unresolved\":0,\"redundant\":1,\"seeds\":2"), "{json}");
        assert!(json.contains("\"verdict\":\"redundant\""), "{json}");
        let mut a = sample();
        a.topoff = Some(t);
        let s = a.summary();
        assert!(s.contains("0 unresolved, 1 redundant)"), "{s}");
    }
}
