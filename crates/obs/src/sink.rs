//! Structured event output: one JSON document per line (JSONL).
//!
//! A [`JsonlSink`] serializes [`JsonValue`] events to any `Write`
//! target behind a mutex, so the fault simulator's worker threads and
//! the session layer can share one sink. Lines are written atomically
//! (value + newline in a single locked section), so a JSONL file is
//! valid even under concurrent emission.

use crate::json::JsonValue;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// A thread-safe line-oriented JSON event writer.
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
    opened: Instant,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// A sink over any writer (e.g. `Vec<u8>` in tests, a socket, a
    /// locked stderr).
    pub fn new(writer: impl Write + Send + 'static) -> JsonlSink {
        JsonlSink { writer: Mutex::new(Box::new(writer)), opened: Instant::now() }
    }

    /// A buffered sink writing to (and truncating) `path`.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }

    /// Writes one event as a single JSONL line.
    pub fn emit(&self, event: &JsonValue) -> io::Result<()> {
        let mut w = self.writer.lock().expect("sink lock");
        w.write_all(event.to_json().as_bytes())?;
        w.write_all(b"\n")
    }

    /// Writes a named event with an `ev` tag and a `t_us` offset from
    /// sink creation, followed by the given fields:
    /// `{"ev":"stage_done","t_us":1234,...fields}`.
    pub fn emit_event(&self, name: &str, fields: JsonValue) -> io::Result<()> {
        let t_us = self.opened.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut event = JsonValue::object().push("ev", name).push("t_us", t_us);
        if let JsonValue::Object(pairs) = fields {
            for (k, v) in pairs {
                event = event.push(&k, v);
            }
        } else {
            event = event.push("data", fields);
        }
        self.emit(&event)
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.writer.lock().expect("sink lock").flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write target that appends into a shared buffer.
    #[derive(Clone)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_are_one_line_each() {
        let buf = Shared(Arc::new(StdMutex::new(Vec::new())));
        let sink = JsonlSink::new(buf.clone());
        sink.emit(&JsonValue::object().push("a", 1u64)).unwrap();
        sink.emit(&JsonValue::object().push("b", "x\ny")).unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["{\"a\":1}", "{\"b\":\"x\\ny\"}"]);
    }

    #[test]
    fn emit_event_tags_and_timestamps() {
        let buf = Shared(Arc::new(StdMutex::new(Vec::new())));
        let sink = JsonlSink::new(buf.clone());
        sink.emit_event("stage_done", JsonValue::object().push("stage", 2u64)).unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.starts_with("{\"ev\":\"stage_done\",\"t_us\":"), "{text}");
        assert!(text.trim_end().ends_with(",\"stage\":2}"), "{text}");
    }

    #[test]
    fn concurrent_emission_never_interleaves_lines() {
        let buf = Shared(Arc::new(StdMutex::new(Vec::new())));
        let sink = JsonlSink::new(buf.clone());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        sink.emit(&JsonValue::object().push("t", t).push("i", i)).unwrap();
                    }
                });
            }
        });
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 400);
        for line in lines {
            assert!(line.starts_with("{\"t\":") && line.ends_with('}'), "mangled: {line}");
        }
    }

    #[test]
    fn file_sink_round_trips() {
        let path = std::env::temp_dir().join("bist_obs_sink_test.jsonl");
        let sink = JsonlSink::to_file(&path).unwrap();
        sink.emit(&JsonValue::object().push("ok", true)).unwrap();
        sink.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}\n");
        let _ = std::fs::remove_file(&path);
    }
}
