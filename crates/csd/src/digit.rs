use std::fmt;

/// One signed power-of-two term, `sign * 2^power`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignedDigit {
    /// Bit position (`2^power`); may be negative when the digit encodes a
    /// fractional coefficient term.
    pub power: i32,
    /// `false` for `+2^power`, `true` for `-2^power`.
    pub negative: bool,
}

impl SignedDigit {
    /// The digit's numeric value as a float.
    pub fn value(self) -> f64 {
        let v = 2f64.powi(self.power);
        if self.negative {
            -v
        } else {
            v
        }
    }
}

impl fmt::Display for SignedDigit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}2^{}", if self.negative { "-" } else { "+" }, self.power)
    }
}

/// A canonic-signed-digit representation: signed powers of two with no
/// two adjacent nonzero digits, which minimizes the nonzero-digit count
/// among all signed-digit representations.
///
/// # Example
///
/// ```
/// use bist_csd::Csd;
///
/// let c = Csd::from_integer(-23); // -23 = -32 + 8 + 1
/// assert_eq!(c.to_integer(), -23);
/// assert_eq!(c.nonzero_digits(), 3);
/// assert!(c.is_canonic());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csd {
    digits: Vec<SignedDigit>, // sorted by descending power
}

impl Csd {
    /// Recodes an integer into CSD form.
    ///
    /// Uses the classic non-adjacent-form recoding: scan from the LSB;
    /// whenever the remaining value is odd, emit the digit `±1` that
    /// makes the remainder divisible by 4.
    pub fn from_integer(mut value: i64) -> Self {
        let mut digits = Vec::new();
        let mut power = 0;
        while value != 0 {
            if value & 1 != 0 {
                // Choose the residue in {-1, +1} that zeroes the next bit too.
                let rem: i64 = if value & 3 == 3 { -1 } else { 1 };
                digits.push(SignedDigit { power, negative: rem < 0 });
                value -= rem;
            }
            value >>= 1;
            power += 1;
        }
        digits.reverse();
        Csd { digits }
    }

    /// Builds a CSD value from explicit digits.
    ///
    /// The digits are sorted by descending power. No canonicity check is
    /// performed — use [`Csd::is_canonic`] if you need the guarantee.
    pub fn from_digits(mut digits: Vec<SignedDigit>) -> Self {
        digits.sort_by_key(|d| std::cmp::Reverse(d.power));
        Csd { digits }
    }

    /// The digits, ordered from most- to least-significant.
    pub fn digits(&self) -> &[SignedDigit] {
        &self.digits
    }

    /// Number of nonzero digits (equals 1 + the number of adders needed
    /// by a shift-and-add multiplier, except that zero digits need none).
    pub fn nonzero_digits(&self) -> usize {
        self.digits.len()
    }

    /// Evaluates the representation back to an integer.
    ///
    /// # Panics
    ///
    /// Panics if any digit has a negative power (fractional digits cannot
    /// be represented as an integer).
    pub fn to_integer(&self) -> i64 {
        self.digits
            .iter()
            .map(|d| {
                assert!(d.power >= 0, "fractional digit in integer evaluation");
                let v = 1i64 << d.power;
                if d.negative {
                    -v
                } else {
                    v
                }
            })
            .sum()
    }

    /// Evaluates the representation as a float (handles fractional powers).
    pub fn to_f64(&self) -> f64 {
        self.digits.iter().map(|d| d.value()).sum()
    }

    /// `true` if no two nonzero digits occupy adjacent bit positions.
    pub fn is_canonic(&self) -> bool {
        self.digits.windows(2).all(|w| w[0].power - w[1].power >= 2)
    }

    /// Rescales all digit powers by `shift` (multiply by `2^shift`);
    /// used to move between integer and fractional coefficient domains.
    pub fn shifted(&self, shift: i32) -> Csd {
        Csd {
            digits: self
                .digits
                .iter()
                .map(|d| SignedDigit { power: d.power + shift, negative: d.negative })
                .collect(),
        }
    }
}

impl fmt::Display for Csd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.digits.is_empty() {
            return write!(f, "0");
        }
        for (i, d) in self.digits.iter().enumerate() {
            if i == 0 {
                write!(f, "{d}")?;
            } else {
                write!(f, " {d}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_no_digits() {
        let c = Csd::from_integer(0);
        assert_eq!(c.nonzero_digits(), 0);
        assert_eq!(c.to_integer(), 0);
        assert_eq!(c.to_string(), "0");
        assert!(c.is_canonic());
    }

    #[test]
    fn known_recodings() {
        // 7 = 8 - 1
        let c7 = Csd::from_integer(7);
        assert_eq!(
            c7.digits(),
            &[SignedDigit { power: 3, negative: false }, SignedDigit { power: 0, negative: true }]
        );
        // 5 = 4 + 1 (already sparse)
        assert_eq!(Csd::from_integer(5).nonzero_digits(), 2);
        // 15 = 16 - 1
        assert_eq!(Csd::from_integer(15).nonzero_digits(), 2);
        // 0b101010101 stays 5 digits
        assert_eq!(Csd::from_integer(0b1_0101_0101).nonzero_digits(), 5);
    }

    #[test]
    fn negative_values_recode() {
        let c = Csd::from_integer(-7);
        assert_eq!(c.to_integer(), -7);
        assert_eq!(c.nonzero_digits(), 2);
        assert!(c.is_canonic());
    }

    #[test]
    fn shifted_scales_value() {
        let c = Csd::from_integer(5).shifted(-3);
        assert!((c.to_f64() - 5.0 / 8.0).abs() < 1e-15);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Csd::from_integer(7).to_string(), "+2^3 -2^0");
    }

    #[test]
    fn from_digits_sorts() {
        let c = Csd::from_digits(vec![
            SignedDigit { power: 0, negative: true },
            SignedDigit { power: 3, negative: false },
        ]);
        assert_eq!(c.digits()[0].power, 3);
    }

    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_round_trip(v in -100_000i64..100_000) {
                let c = Csd::from_integer(v);
                prop_assert_eq!(c.to_integer(), v);
            }

            #[test]
            fn prop_always_canonic(v in -1_000_000i64..1_000_000) {
                prop_assert!(Csd::from_integer(v).is_canonic());
            }

            #[test]
            fn prop_digit_count_at_most_binary_ones(v in 0i64..1_000_000) {
                // CSD never uses more nonzero digits than plain binary.
                let c = Csd::from_integer(v);
                prop_assert!(c.nonzero_digits() <= v.count_ones() as usize);
            }

            #[test]
            fn prop_f64_matches_integer(v in -100_000i64..100_000) {
                let c = Csd::from_integer(v);
                prop_assert!((c.to_f64() - v as f64).abs() < 1e-9);
            }
        }
    }
}
