//! Canonic-signed-digit (CSD) coefficient encoding.
//!
//! The paper's filters implement fixed-coefficient multiplications as
//! hardwired shift-and-add structures, with coefficients converted "to a
//! small number of add and subtract operations" using a canonic
//! signed-digit representation (its Section 3, following FIRGEN and
//! Samueli's powers-of-two coefficient design). This crate provides:
//!
//! * [`Csd`] — an exact CSD recoding of an integer: a list of
//!   [`SignedDigit`]s `±2^k` with no two adjacent nonzero digits.
//! * [`quantize`] — nearest representable value with at most `max_digits`
//!   nonzero digits at a given fractional precision (a greedy
//!   signed-power-of-two approximation).
//!
//! Each nonzero digit beyond the first costs one adder/subtractor in the
//! hardware multiplier, so `max_digits` directly budgets the per-tap
//! adder count that shows up in the paper's Table 1.
//!
//! # Example
//!
//! ```
//! use bist_csd::Csd;
//!
//! // 7 = 8 - 1 in CSD (two digits), not 4 + 2 + 1 (three).
//! let csd = Csd::from_integer(7);
//! assert_eq!(csd.nonzero_digits(), 2);
//! assert_eq!(csd.to_integer(), 7);
//! ```

#![forbid(unsafe_code)]

mod digit;
mod quantize;

pub use digit::{Csd, SignedDigit};
pub use quantize::{quantize, QuantizedCoefficient};
