use crate::{Csd, SignedDigit};

/// A coefficient quantized to a digit-budgeted CSD value.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedCoefficient {
    /// The CSD representation of [`QuantizedCoefficient::raw`], expressed
    /// in integer powers (multiply by `2^-frac_bits` for the value).
    pub csd: Csd,
    /// The quantized value as an integer in units of `2^-frac_bits`.
    pub raw: i64,
    /// Fractional precision of the quantization.
    pub frac_bits: u32,
    /// The quantized value as a float.
    pub value: f64,
    /// Quantization error `value - target`.
    pub error: f64,
}

impl QuantizedCoefficient {
    /// CSD digits scaled into the fractional domain
    /// (powers are `digit.power - frac_bits`).
    pub fn fractional_digits(&self) -> Vec<SignedDigit> {
        self.csd.shifted(-(self.frac_bits as i32)).digits().to_vec()
    }
}

/// Quantizes `target` to the nearest value representable with at most
/// `max_digits` signed power-of-two terms on a `2^-frac_bits` grid.
///
/// First the target is rounded to the grid and recoded exactly; if the
/// exact CSD already fits the digit budget it is used. Otherwise a greedy
/// signed-power-of-two approximation (repeatedly subtracting the closest
/// `±2^k`) is taken and re-canonicalized — the classic approach used for
/// multiplierless FIR coefficient design.
///
/// # Panics
///
/// Panics if `max_digits == 0`, `frac_bits > 62`, or `target` is not
/// finite.
///
/// # Example
///
/// ```
/// use bist_csd::quantize;
///
/// let q = quantize(0.3333, 10, 3);
/// assert!(q.csd.nonzero_digits() <= 3);
/// assert!((q.value - 0.3333).abs() < 0.01);
/// ```
pub fn quantize(target: f64, frac_bits: u32, max_digits: usize) -> QuantizedCoefficient {
    assert!(max_digits > 0, "digit budget must be nonzero");
    assert!(frac_bits <= 62, "fractional precision too large");
    assert!(target.is_finite(), "target must be finite");
    let scale = (1u64 << frac_bits) as f64;
    let exact_raw = (target * scale).round() as i64;
    let exact = Csd::from_integer(exact_raw);
    let raw = if exact.nonzero_digits() <= max_digits {
        exact_raw
    } else {
        greedy_spt(target * scale, max_digits)
    };
    let csd = Csd::from_integer(raw);
    debug_assert!(csd.nonzero_digits() <= max_digits);
    let value = raw as f64 / scale;
    QuantizedCoefficient { csd, raw, frac_bits, value, error: value - target }
}

/// Greedy signed-power-of-two approximation of `x` with at most `terms`
/// terms; each step takes the power of two closest to the residual.
fn greedy_spt(x: f64, terms: usize) -> i64 {
    let mut residual = x;
    let mut acc = 0i64;
    for _ in 0..terms {
        if residual.abs() < 0.5 {
            break;
        }
        let p = residual.abs().log2().round() as i32;
        let p = p.max(0);
        let term = 1i64 << p.min(62);
        if residual < 0.0 {
            acc -= term;
            residual += term as f64;
        } else {
            acc += term;
            residual -= term as f64;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_pass_through() {
        let q = quantize(0.5, 15, 4);
        assert_eq!(q.raw, 1 << 14);
        assert_eq!(q.error, 0.0);
        assert_eq!(q.csd.nonzero_digits(), 1);
    }

    #[test]
    fn digit_budget_is_respected() {
        // 0.justunder-1 needs many digits exactly; budget forces approximation.
        let q = quantize(0.49993896484375, 14, 2);
        assert!(q.csd.nonzero_digits() <= 2);
        assert!(q.error.abs() < 2f64.powi(-10));
    }

    #[test]
    fn negative_targets() {
        let q = quantize(-0.3, 12, 3);
        assert!(q.value < 0.0);
        assert!(q.error.abs() < 0.01);
        assert!(q.csd.is_canonic());
    }

    #[test]
    fn zero_target_is_zero() {
        let q = quantize(0.0, 15, 4);
        assert_eq!(q.raw, 0);
        assert_eq!(q.csd.nonzero_digits(), 0);
        assert_eq!(q.value, 0.0);
    }

    #[test]
    fn fractional_digits_scale_powers() {
        let q = quantize(0.5, 15, 4);
        let d = q.fractional_digits();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].power, -1);
    }

    #[test]
    #[should_panic(expected = "digit budget")]
    fn zero_budget_panics() {
        quantize(0.5, 15, 0);
    }

    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_error_bounded_for_generous_budget(t in -0.999..0.999f64) {
                // With 4 digits at 14 fractional bits the error for smooth FIR
                // coefficients stays small; here we only guarantee a loose bound.
                let q = quantize(t, 14, 4);
                prop_assert!(q.error.abs() <= 0.05, "target {t} error {}", q.error);
                prop_assert!(q.csd.nonzero_digits() <= 4);
            }

            #[test]
            fn prop_result_is_canonic_and_consistent(t in -0.999..0.999f64,
                                                     digits in 1usize..6) {
                let q = quantize(t, 12, digits);
                prop_assert!(q.csd.is_canonic());
                prop_assert!(q.csd.nonzero_digits() <= digits);
                prop_assert_eq!(q.csd.to_integer(), q.raw);
                prop_assert!((q.value - q.raw as f64 / 4096.0).abs() < 1e-12);
            }

            #[test]
            fn prop_quantizing_a_quantized_value_is_identity(t in -0.999..0.999f64) {
                let q1 = quantize(t, 13, 4);
                let q2 = quantize(q1.value, 13, 4);
                prop_assert_eq!(q1.raw, q2.raw);
            }
        }
    }
}
