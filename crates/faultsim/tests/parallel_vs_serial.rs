//! The load-bearing correctness property of the fault simulator: the
//! staged 64-lane parallel engine must return *exactly* the detection
//! cycles of one-fault-at-a-time serial simulation — on arbitrary
//! netlists, universes and stage schedules, and at every worker-thread
//! count.
//!
//! The deterministic tests below always run. The randomized
//! (property-based) tests need the `proptest` crate and are gated
//! behind the off-by-default `proptest` feature so the workspace
//! builds offline; see the workspace `Cargo.toml` for how to re-enable
//! them.

use bist_faultsim::{FaultUniverse, ParallelFaultSimulator, SimOptions, StageSchedule};
use rtl::range::{aligned_input_range, RangeAnalysis};
use rtl::sim::{BitSlicedSim, CellFault};
use rtl::{Netlist, NetlistBuilder, NodeId};

#[derive(Debug, Clone)]
enum Op {
    Register(usize),
    ShiftRight(usize, u32),
    Add(usize, usize),
    Sub(usize, usize),
}

fn build(width: u32, ops: &[Op]) -> Netlist {
    let mut b = NetlistBuilder::new(width).expect("width valid");
    let mut ids: Vec<NodeId> = vec![b.input("x")];
    for op in ops {
        let pick = |i: usize| ids[i % ids.len()];
        let id = match *op {
            Op::Register(s) => b.register(pick(s)),
            Op::ShiftRight(s, k) => b.shift_right(pick(s), k),
            Op::Add(a, c) => b.add(pick(a), pick(c)),
            Op::Sub(a, c) => b.sub(pick(a), pick(c)),
        };
        ids.push(id);
    }
    let last = *ids.last().expect("nonempty");
    b.output(last, "y");
    b.finish().expect("DAG by construction")
}

fn serial_reference(n: &Netlist, u: &FaultUniverse, inputs: &[i64]) -> Vec<Option<u32>> {
    u.ids()
        .map(|fid| {
            let site = u.site(fid);
            let mut sim = BitSlicedSim::new(n);
            sim.set_faults(
                site.node,
                vec![CellFault { cell: site.cell, fault: site.representative, lanes: 2 }],
            );
            for (cycle, &x) in inputs.iter().enumerate() {
                sim.step(x);
                if sim.output_diff_lanes(0) & 2 != 0 {
                    return Some(cycle as u32);
                }
            }
            None
        })
        .collect()
}

/// A fixed netlist big enough to span several 63-fault shards: a short
/// tapped delay line with adds, subs and shifts.
fn sharded_fixture() -> Netlist {
    let ops = [
        Op::Register(0),
        Op::Register(1),
        Op::ShiftRight(0, 2),
        Op::Add(1, 3),
        Op::Register(4),
        Op::Sub(4, 2),
        Op::Add(5, 6),
        Op::ShiftRight(7, 1),
        Op::Add(7, 8),
        Op::Sub(9, 0),
    ];
    build(10, &ops)
}

fn fixture_universe(n: &Netlist) -> FaultUniverse {
    let ranges = RangeAnalysis::analyze(n, aligned_input_range(10, 10));
    let reach = rtl::reachability::Reachability::analyze(n, 10);
    FaultUniverse::enumerate_pruned(n, &ranges, &reach)
}

fn fixture_inputs(len: usize) -> Vec<i64> {
    // Deterministic full-range-ish stimulus (odd multiplier mod 2^9).
    (0..len).map(|i| ((i as i64 * 37 + 11) % 256) - 128).collect()
}

#[test]
fn threaded_runs_are_bit_identical_to_single_threaded() {
    let netlist = sharded_fixture();
    let universe = fixture_universe(&netlist);
    assert!(universe.len() > 63, "fixture must span multiple shards, got {}", universe.len());
    let inputs = fixture_inputs(300);
    let schedule = StageSchedule::with_boundaries(vec![32, 96, 200]);

    let baseline = ParallelFaultSimulator::new(&netlist, &universe)
        .with_options(SimOptions::new().with_schedule(schedule.clone()).with_threads(1))
        .run(&inputs);
    assert_eq!(baseline.detection_cycles(), &serial_reference(&netlist, &universe, &inputs)[..]);

    for threads in [2usize, 4, 8] {
        let run = ParallelFaultSimulator::new(&netlist, &universe)
            .with_options(SimOptions::new().with_schedule(schedule.clone()).with_threads(threads))
            .run(&inputs);
        assert_eq!(
            run.detection_cycles(),
            baseline.detection_cycles(),
            "detection cycles differ at {threads} threads"
        );
        assert_eq!(run.missed(), baseline.missed(), "missed set differs at {threads} threads");
        assert_eq!(run.total_cycles(), baseline.total_cycles());
    }
}

#[test]
fn stage_boundary_past_total_cycles_is_harmless() {
    let netlist = sharded_fixture();
    let universe = fixture_universe(&netlist);
    let inputs = fixture_inputs(50);
    // Boundaries beyond the run length (and a degenerate duplicate-free
    // in-range one) must not change results at any thread count.
    let schedule = StageSchedule::with_boundaries(vec![10, 1000, 4096]);
    let serial = serial_reference(&netlist, &universe, &inputs);
    for threads in [1usize, 3] {
        let run = ParallelFaultSimulator::new(&netlist, &universe)
            .with_options(SimOptions::new().with_schedule(schedule.clone()).with_threads(threads))
            .run(&inputs);
        assert_eq!(run.detection_cycles(), &serial[..], "threads = {threads}");
        assert_eq!(run.total_cycles(), inputs.len() as u32);
    }
}

#[test]
fn empty_universe_runs_with_worker_threads() {
    // A netlist whose only node chain carries no arithmetic yields an
    // empty fault universe; the sharded loop must handle zero shards.
    let netlist = build(8, &[Op::Register(0), Op::ShiftRight(1, 1)]);
    let ranges = RangeAnalysis::analyze(&netlist, aligned_input_range(8, 8));
    let universe = FaultUniverse::enumerate(&netlist, &ranges);
    assert!(universe.is_empty());
    let inputs = fixture_inputs(20);
    let run = ParallelFaultSimulator::new(&netlist, &universe)
        .with_options(SimOptions::new().with_threads(4))
        .run(&inputs);
    assert_eq!(run.detection_cycles().len(), 0);
    assert!(run.missed().is_empty());
    assert_eq!(run.total_cycles(), inputs.len() as u32);
}

#[cfg(feature = "proptest")]
mod proptests {
    use super::*;
    use bist_faultsim::SignatureConfig;
    use proptest::prelude::*;

    fn op_strategy(max_src: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..max_src).prop_map(Op::Register),
            (0..max_src, 0u32..5).prop_map(|(s, k)| Op::ShiftRight(s, k)),
            (0..max_src, 0..max_src).prop_map(|(a, b)| Op::Add(a, b)),
            (0..max_src, 0..max_src).prop_map(|(a, b)| Op::Sub(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn parallel_equals_serial_on_random_netlists(
            ops in proptest::collection::vec(op_strategy(10), 2..10),
            inputs in proptest::collection::vec(-128i64..=127, 4..40),
            boundaries in proptest::collection::btree_set(1u32..38, 0..4),
        ) {
            let netlist = build(8, &ops);
            if netlist.arithmetic_ids().is_empty() {
                return Ok(());
            }
            let ranges = RangeAnalysis::analyze(&netlist, aligned_input_range(8, 8));
            let reach = rtl::reachability::Reachability::analyze(&netlist, 8);
            let universe = FaultUniverse::enumerate_pruned(&netlist, &ranges, &reach);
            if universe.is_empty() {
                return Ok(());
            }
            let schedule = StageSchedule::with_boundaries(boundaries.into_iter().collect());
            let parallel = ParallelFaultSimulator::new(&netlist, &universe)
                .with_schedule(schedule)
                .run(&inputs);
            let serial = serial_reference(&netlist, &universe, &inputs);
            prop_assert_eq!(parallel.detection_cycles(), &serial[..]);
        }

        #[test]
        fn signature_verdicts_invariant_across_threads_and_schedules(
            ops in proptest::collection::vec(op_strategy(10), 2..10),
            inputs in proptest::collection::vec(-128i64..=127, 4..40),
            boundaries in proptest::collection::btree_set(1u32..38, 0..4),
            threads in 2usize..6,
        ) {
            // Signature-mode determinism: the per-fault end-of-test
            // signatures, the good signature and the detection cycles
            // must not depend on the worker-thread count or on where
            // the StageSchedule places its repack boundaries.
            let netlist = build(8, &ops);
            if netlist.arithmetic_ids().is_empty() {
                return Ok(());
            }
            let ranges = RangeAnalysis::analyze(&netlist, aligned_input_range(8, 8));
            let reach = rtl::reachability::Reachability::analyze(&netlist, 8);
            let universe = FaultUniverse::enumerate_pruned(&netlist, &ranges, &reach);
            if universe.is_empty() {
                return Ok(());
            }
            let cfg = SignatureConfig { width: 16, poly: 0x1100B };
            let reference = ParallelFaultSimulator::new(&netlist, &universe)
                .with_options(
                    SimOptions::new()
                        .with_schedule(StageSchedule::with_boundaries(vec![]))
                        .with_threads(1)
                        .with_signature(cfg),
                )
                .run(&inputs);
            let schedule = StageSchedule::with_boundaries(boundaries.into_iter().collect());
            let run = ParallelFaultSimulator::new(&netlist, &universe)
                .with_options(
                    SimOptions::new()
                        .with_schedule(schedule)
                        .with_threads(threads)
                        .with_signature(cfg),
                )
                .run(&inputs);
            prop_assert_eq!(run.detection_cycles(), reference.detection_cycles());
            prop_assert_eq!(run.signatures(), reference.signatures());
            prop_assert_eq!(run.aliased(), reference.aliased());
        }

        #[test]
        fn pruned_universe_never_contains_more_than_unpruned(
            ops in proptest::collection::vec(op_strategy(8), 2..8),
        ) {
            let netlist = build(8, &ops);
            let ranges = RangeAnalysis::analyze(&netlist, aligned_input_range(8, 8));
            let reach = rtl::reachability::Reachability::analyze(&netlist, 8);
            let pruned = FaultUniverse::enumerate_pruned(&netlist, &ranges, &reach);
            let plain = FaultUniverse::enumerate(&netlist, &ranges);
            prop_assert!(pruned.len() <= plain.len());
            prop_assert!(pruned.uncollapsed_len() <= plain.uncollapsed_len());
        }

        #[test]
        fn pruning_never_removes_a_detectable_fault(
            ops in proptest::collection::vec(op_strategy(8), 2..8),
            inputs in proptest::collection::vec(-128i64..=127, 4..32),
        ) {
            // Soundness of redundancy elimination: every fault detected when
            // simulating the UNPRUNED universe must still exist (and be
            // detected at the same cycle) in the pruned universe's results.
            let netlist = build(8, &ops);
            if netlist.arithmetic_ids().is_empty() {
                return Ok(());
            }
            let ranges = RangeAnalysis::analyze(&netlist, aligned_input_range(8, 8));
            let reach = rtl::reachability::Reachability::analyze(&netlist, 8);
            let plain = FaultUniverse::enumerate(&netlist, &ranges);
            let pruned = FaultUniverse::enumerate_pruned(&netlist, &ranges, &reach);

            let plain_result = ParallelFaultSimulator::new(&netlist, &plain).run(&inputs);
            // Detected (site-identified) faults from the plain run.
            let mut detected_sites = std::collections::HashSet::new();
            for fid in plain.ids() {
                if plain_result.detection_cycles()[fid.index()].is_some() {
                    let s = plain.site(fid);
                    detected_sites.insert((s.node, s.cell, s.representative));
                }
            }
            // Every *representative* that was detected and survives pruning
            // keeps its detectability; representatives removed by pruning
            // must never have been detected (they are provably redundant).
            let mut pruned_sites = std::collections::HashSet::new();
            for fid in pruned.ids() {
                let s = pruned.site(fid);
                pruned_sites.insert((s.node, s.cell, s.representative));
            }
            for site in &detected_sites {
                // A detected representative may have been merged into a
                // different class representative under the tighter mask, so
                // only assert on sites that vanish entirely: the (node, cell)
                // must still carry some faults unless every fault there was
                // pruned as redundant — in which case detection would have
                // been impossible. Check the strong per-representative form
                // only when the representative itself survives.
                if pruned_sites.contains(site) {
                    continue;
                }
                // Representative merged or pruned: the cell must still exist
                // in the pruned universe if a fault there was detectable.
                let cell_survives = pruned
                    .sites()
                    .iter()
                    .any(|s| s.node == site.0 && s.cell == site.1);
                prop_assert!(
                    cell_survives,
                    "cell {:?}/{} had a detectable fault but was fully pruned",
                    site.0,
                    site.1
                );
            }
        }
    }
}
