use rtl::fulladder::{fault_classes_masked, sum_only_fault_classes_masked, FaFault, FaultClass};
use rtl::range::RangeAnalysis;
use rtl::reachability::Reachability;
use rtl::{Netlist, NodeId, NodeKind};
use std::collections::HashMap;
use std::fmt;

/// Index of a fault class within its [`FaultUniverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultId(pub u32);

impl FaultId {
    /// Position in the universe's site table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One collapsed fault class at a specific full-adder cell of a
/// specific adder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSite {
    /// The adder or subtractor node.
    pub node: NodeId,
    /// Cell (bit) position within the adder.
    pub cell: u32,
    /// Representative stuck-at fault injected during simulation.
    pub representative: FaFault,
    /// Number of collapsed (equivalent) member faults.
    pub members: u32,
    /// Every member of the class, representative included — kept so
    /// structural analyses can reason about individual lines (the
    /// cell-level collapse groups them by *masked* truth table, which
    /// is coarser than exact equivalence).
    pub member_faults: Vec<FaFault>,
    /// Cell-level detecting tests (bitmask over `T0..T7`, see
    /// [`rtl::fulladder::FaultClass`]).
    pub detecting_tests: u8,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[cell {}] {:?} s-a-{}",
            self.node,
            self.cell,
            self.representative.line,
            u8::from(self.representative.stuck_one)
        )
    }
}

/// The collapsed stuck-at fault universe of a netlist.
#[derive(Debug, Clone)]
pub struct FaultUniverse {
    sites: Vec<FaultSite>,
    uncollapsed: usize,
}

impl FaultUniverse {
    /// Enumerates fault classes over every active cell of every
    /// adder/subtractor (the paper's fault model: adder faults only,
    /// registers excluded; redundant sign cells and hardwired-zero cells
    /// removed by the scaling analysis).
    ///
    /// The carry-in of the lowest active cell is constant (0 for an
    /// adder, 1 for a subtractor, from the known-zero low bits), so
    /// faults that are locally redundant under that constraint are
    /// excluded, mirroring the paper's constraint-induced redundancy
    /// elimination.
    pub fn enumerate(netlist: &Netlist, ranges: &RangeAnalysis) -> FaultUniverse {
        Self::build(netlist, ranges, None)
    }

    /// Like [`FaultUniverse::enumerate`], additionally removing faults
    /// that the exact input-cone reachability analysis proves redundant
    /// — the paper's "redundant operator elimination" step, which
    /// matters most inside the CSD multipliers (shifted copies of one
    /// word leave many cell input combinations unreachable).
    pub fn enumerate_pruned(
        netlist: &Netlist,
        ranges: &RangeAnalysis,
        reachability: &Reachability,
    ) -> FaultUniverse {
        Self::build(netlist, ranges, Some(reachability))
    }

    fn build(
        netlist: &Netlist,
        ranges: &RangeAnalysis,
        reachability: Option<&Reachability>,
    ) -> FaultUniverse {
        let mut class_cache: HashMap<(u8, bool), Vec<FaultClass>> = HashMap::new();
        let mut classes_for = |mask: u8, sum_only: bool| -> Vec<FaultClass> {
            class_cache
                .entry((mask, sum_only))
                .or_insert_with(|| {
                    if sum_only {
                        sum_only_fault_classes_masked(mask)
                    } else {
                        fault_classes_masked(mask)
                    }
                })
                .clone()
        };
        let mut sites = Vec::new();
        let mut uncollapsed = 0usize;
        for id in netlist.arithmetic_ids() {
            let Some((lsb, msb)) = ranges.active_span(netlist, id) else {
                continue;
            };
            let is_sub = matches!(netlist.node(id).kind, NodeKind::Sub { .. });
            let is_csa = matches!(netlist.node(id).kind, NodeKind::CsaSum { .. });
            for cell in lsb..=msb {
                let mut mask: u8 = 0xFF;
                // The carry into the lowest active cell of a *ripple*
                // adder is constant (the cells below add zeros — or,
                // for a subtractor, 0 + !0 + 1 which propagates the
                // initial 1). Carry-save cells have no rippling carry.
                if cell == lsb && !is_csa {
                    mask &= if is_sub { 0b1010_1010 } else { 0b0101_0101 };
                }
                mask &= range_combo_mask(netlist, ranges, id, cell);
                if let Some(r) = reachability {
                    mask &= r.combo_mask(id, cell);
                }
                // The netlist's trimmed top cell has no carry logic:
                // its fault universe is the sum-only (XOR-path) set.
                // Carry-save stages are untrimmed; only the word's top
                // cell discards its carry.
                let sum_only =
                    if is_csa { cell == netlist.width() - 1 } else { cell >= netlist.msb_trim(id) };
                for class in classes_for(mask, sum_only) {
                    uncollapsed += class.members.len();
                    sites.push(FaultSite {
                        node: id,
                        cell,
                        representative: class.representative,
                        members: class.members.len() as u32,
                        member_faults: class.members,
                        detecting_tests: class.detecting_tests,
                    });
                }
            }
        }
        FaultUniverse { sites, uncollapsed }
    }

    /// Number of collapsed fault classes.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Total faults before collapsing (comparable to the paper's
    /// Table 1 fault counts).
    pub fn uncollapsed_len(&self) -> usize {
        self.uncollapsed
    }

    /// The fault sites, indexable by [`FaultId::index`].
    pub fn sites(&self) -> &[FaultSite] {
        &self.sites
    }

    /// A site by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn site(&self, id: FaultId) -> &FaultSite {
        &self.sites[id.index()]
    }

    /// All fault ids.
    pub fn ids(&self) -> impl Iterator<Item = FaultId> + '_ {
        (0..self.sites.len() as u32).map(FaultId)
    }

    /// Ids of faults on a given node.
    pub fn ids_on_node(&self, node: NodeId) -> Vec<FaultId> {
        self.ids().filter(|&id| self.site(id).node == node).collect()
    }

    /// A new universe containing only the listed faults, in the listed
    /// order: position `i` of `ids` becomes `FaultId(i)` of the subset.
    /// The caller keeps `ids` to map subset results back to this
    /// universe's ids. Used by the top-off planner, which repeatedly
    /// re-simulates a shrinking residue.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn subset(&self, ids: &[FaultId]) -> FaultUniverse {
        let sites: Vec<FaultSite> = ids.iter().map(|&id| self.site(id).clone()).collect();
        let uncollapsed = sites.iter().map(|s| s.members as usize).sum();
        FaultUniverse { sites, uncollapsed }
    }

    /// The fully uncollapsed universe: one single-member site per raw
    /// member fault, plus a map from each expanded site back to the
    /// index of the class it came from. Raw-universe simulations (the
    /// honest baseline for collapse-speedup measurements) run on this.
    pub fn expanded(&self) -> (FaultUniverse, Vec<u32>) {
        let mut sites = Vec::with_capacity(self.uncollapsed);
        let mut origin = Vec::with_capacity(self.uncollapsed);
        for (idx, site) in self.sites.iter().enumerate() {
            for &fault in &site.member_faults {
                sites.push(FaultSite {
                    node: site.node,
                    cell: site.cell,
                    representative: fault,
                    members: 1,
                    member_faults: vec![fault],
                    detecting_tests: site.detecting_tests,
                });
                origin.push(idx as u32);
            }
        }
        let uncollapsed = sites.len();
        (FaultUniverse { sites, uncollapsed }, origin)
    }
}

/// Combos at `cell` that the value-range analysis proves reachable.
///
/// Three sound constraints, all derived from the interval analysis:
///
/// * Bits below an operand's known-zero LSB count are constant 0.
/// * Bits at or above an operand's range MSB equal the operand's sign,
///   so only achievable signs contribute values.
/// * In the *sign region* of both operands and the sum
///   (`cell >= msb(A), msb(B), msb(S)`), the full-adder identity
///   `sum_bit = a ^ b ^ ci` pins the carry: `ci = sign(A) ^ lineB ^
///   sign(S)`. Because conservative scaling guarantees `|S|` stays
///   within the word, combos like `(0,0,1)` — both operands
///   non-negative yet a carry arriving — are *provably impossible*
///   there. This removes exactly the upper-bit redundancies the paper's
///   testable-design flow eliminates.
fn range_combo_mask(netlist: &Netlist, ranges: &RangeAnalysis, id: NodeId, cell: u32) -> u8 {
    let (a, b, is_sub) = match netlist.node(id).kind {
        NodeKind::Add { a, b } => (a, b, false),
        NodeKind::Sub { a, b } => (a, b, true),
        NodeKind::CsaSum { a, b, c } => {
            // Carry-save cells take three operand bits directly (the
            // "carry-in" is the third operand): the mask is the product
            // of the three per-cell bit marginals.
            return csa_combo_mask(ranges, a, b, c, cell);
        }
        _ => return 0xFF,
    };
    let ra = ranges.range(a);
    let rb = ranges.range(b);
    let rout = ranges.range(id);

    // Possible raw-bit values of one operand at this cell.
    let bit_values = |r: rtl::range::NodeRange| -> Vec<bool> {
        if cell < r.zero_lsbs {
            vec![false]
        } else if cell >= r.msb_cell() {
            let mut v = Vec::new();
            if r.hi >= 0 {
                v.push(false); // non-negative values: sign bit 0
            }
            if r.lo < 0 {
                v.push(true);
            }
            v
        } else {
            vec![false, true]
        }
    };
    let a_vals = bit_values(ra);
    // The cell's B line is inverted for a subtractor.
    let b_vals: Vec<bool> = bit_values(rb).into_iter().map(|v| v ^ is_sub).collect();

    let sign_region = cell >= ra.msb_cell() && cell >= rb.msb_cell() && cell >= rout.msb_cell();

    let mut mask = 0u8;
    for &av in &a_vals {
        for &bv in &b_vals {
            if sign_region {
                // Operand signs: undo the subtractor inversion on B.
                let sgn_a = av;
                let sgn_b = bv ^ is_sub;
                // Achievable sum signs for this operand-sign pair,
                // treating the operands as independent (conservative:
                // can only keep extra combos, never drop real ones).
                let (a_lo, a_hi) = clamp_sign(ra, sgn_a);
                let (b_lo, b_hi) = clamp_sign(rb, sgn_b);
                if a_lo > a_hi || b_lo > b_hi {
                    continue;
                }
                let (s_lo, s_hi) =
                    if is_sub { (a_lo - b_hi, a_hi - b_lo) } else { (a_lo + b_lo, a_hi + b_hi) };
                // If the exact sum can exceed the cell's capacity the
                // stored sign wraps, so both signs become possible.
                let capacity = 1i64 << cell.min(62);
                let wraps = s_lo < -capacity || s_hi >= capacity;
                let mut sum_signs = Vec::new();
                if wraps || s_hi >= 0 {
                    sum_signs.push(false);
                }
                if wraps || s_lo < 0 {
                    sum_signs.push(true);
                }
                for sgn_s in sum_signs {
                    // sum_bit = a ^ b_line ^ ci  =>  ci = a ^ b_line ^ sum_bit.
                    let ci = av ^ bv ^ sgn_s;
                    mask |= 1 << ((u8::from(av) << 2) | (u8::from(bv) << 1) | u8::from(ci));
                }
            } else {
                // Carry unconstrained.
                for ci in [false, true] {
                    mask |= 1 << ((u8::from(av) << 2) | (u8::from(bv) << 1) | u8::from(ci));
                }
            }
        }
    }
    mask
}

/// Reachable combos of a carry-save cell from the three operands'
/// per-cell bit marginals.
fn csa_combo_mask(ranges: &RangeAnalysis, a: NodeId, b: NodeId, c: NodeId, cell: u32) -> u8 {
    let bit_values = |id: NodeId| -> Vec<bool> {
        let r = ranges.range(id);
        if cell < r.zero_lsbs {
            vec![false]
        } else if cell >= r.msb_cell() {
            let mut v = Vec::new();
            if r.hi >= 0 {
                v.push(false);
            }
            if r.lo < 0 {
                v.push(true);
            }
            v
        } else {
            vec![false, true]
        }
    };
    let mut mask = 0u8;
    for &av in &bit_values(a) {
        for &bv in &bit_values(b) {
            for &cv in &bit_values(c) {
                mask |= 1 << ((u8::from(av) << 2) | (u8::from(bv) << 1) | u8::from(cv));
            }
        }
    }
    mask
}

/// Restricts a range to one sign; returns an empty interval when the
/// sign is unachievable.
fn clamp_sign(r: rtl::range::NodeRange, negative: bool) -> (i64, i64) {
    if negative {
        (r.lo, r.hi.min(-1))
    } else {
        (r.lo.max(0), r.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::range::aligned_input_range;
    use rtl::NetlistBuilder;

    fn simple() -> Netlist {
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let s1 = b.shift_right(x, 1);
        let s2 = b.shift_right(d, 2);
        let y = b.add_labeled(s1, s2, "acc");
        b.output(y, "y");
        b.finish().unwrap()
    }

    #[test]
    fn universe_covers_active_cells_only() {
        let n = simple();
        let ranges = RangeAnalysis::analyze(&n, aligned_input_range(8, 8));
        let u = FaultUniverse::enumerate(&n, &ranges);
        assert!(!u.is_empty());
        let acc = n.find_label("acc").unwrap();
        let (lsb, msb) = ranges.active_span(&n, acc).unwrap();
        for site in u.sites() {
            assert_eq!(site.node, acc);
            assert!(site.cell >= lsb && site.cell <= msb);
        }
        assert!(u.uncollapsed_len() > u.len());
    }

    #[test]
    fn subtractors_get_ci_one_lsb_constraint() {
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let y = b.sub_labeled(x, d, "diff");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let ranges = RangeAnalysis::analyze(&n, aligned_input_range(8, 8));
        let u = FaultUniverse::enumerate(&n, &ranges);
        // Cell 0 of a subtractor: no class may require a ci=0 test.
        for site in u.sites().iter().filter(|s| s.cell == 0) {
            assert_eq!(site.detecting_tests & 0b0101_0101, 0, "{site}");
        }
    }

    #[test]
    fn fault_count_scales_with_adders() {
        // Two adders -> roughly double the faults of one.
        let n1 = simple();
        let r1 = RangeAnalysis::analyze(&n1, aligned_input_range(8, 8));
        let u1 = FaultUniverse::enumerate(&n1, &r1);

        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let s1 = b.shift_right(x, 1);
        let s2 = b.shift_right(d, 2);
        let a1 = b.add(s1, s2);
        let d2 = b.register(a1);
        let a2 = b.add(a1, d2);
        b.output(a2, "y");
        let n2 = b.finish().unwrap();
        let r2 = RangeAnalysis::analyze(&n2, aligned_input_range(8, 8));
        let u2 = FaultUniverse::enumerate(&n2, &r2);
        assert!(u2.len() > u1.len());
    }

    #[test]
    fn ids_on_node_partition_the_universe() {
        let n = simple();
        let ranges = RangeAnalysis::analyze(&n, aligned_input_range(8, 8));
        let u = FaultUniverse::enumerate(&n, &ranges);
        let total: usize = n.arithmetic_ids().iter().map(|&a| u.ids_on_node(a).len()).sum();
        assert_eq!(total, u.len());
    }

    #[test]
    fn sign_region_cells_drop_impossible_carry_combos() {
        // x>>2 + x>>3: output msb sits above both operands' msbs at some
        // cells only when ranges force it; instead build a case with a
        // guaranteed sign region: two tiny operands in a wide word.
        let mut b = NetlistBuilder::new(12).unwrap();
        let x = b.input("x");
        let s6 = b.shift_right(x, 6);
        let s7 = b.shift_right(x, 7);
        let y = b.add_labeled(s6, s7, "sum");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let ranges = RangeAnalysis::analyze(&n, aligned_input_range(12, 12));
        let node = n.find_label("sum").unwrap();
        let (_, msb) = ranges.active_span(&n, node).unwrap();
        let mask = range_combo_mask(&n, &ranges, node, msb);
        // T1 (001: both operands non-negative, carry 1) impossible at
        // the top sign cell; T6 (110) likewise.
        assert_eq!(mask & (1 << 1), 0, "T1 reachable: {mask:08b}");
        assert_eq!(mask & (1 << 6), 0, "T6 reachable: {mask:08b}");
        // T0 and T7 remain reachable.
        assert_ne!(mask & (1 << 0), 0);
        assert_ne!(mask & (1 << 7), 0);
    }

    #[test]
    fn range_mask_is_sound_for_observed_combos() {
        // Simulate and confirm every observed combo at every cell is
        // predicted reachable by the range mask.
        let mut b = NetlistBuilder::new(10).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let s = b.shift_right(d, 3);
        let y = b.sub_labeled(x, s, "diff");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let ranges = RangeAnalysis::analyze(&n, aligned_input_range(10, 10));
        let node = n.find_label("diff").unwrap();

        // Reference: direct integer simulation of the subtractor cells.
        let q = fixedpoint::QFormat::new(10, 9).unwrap();
        let mut prev = 0i64;
        let mut observed = [0u8; 10];
        let mut state = 0xACE1u64;
        for _ in 0..2000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let v = q.sign_extend(state >> 54);
            let a_bits = q.to_bits(v);
            let b_bits = q.to_bits(prev >> 3);
            let b_line = !b_bits;
            let mut carry = 1u64;
            for cell in 0..10 {
                let ab = (a_bits >> cell) & 1;
                let bb = (b_line >> cell) & 1;
                observed[cell as usize] |= 1 << ((ab << 2) | (bb << 1) | carry);
                let x1 = ab ^ bb;
                carry = (ab & bb) | (x1 & carry);
            }
            prev = v;
        }
        for cell in 0..10u32 {
            let mask = range_combo_mask(&n, &ranges, node, cell);
            assert_eq!(
                observed[cell as usize] & !mask,
                0,
                "cell {cell}: observed {:08b} not within predicted {mask:08b}",
                observed[cell as usize]
            );
        }
    }

    #[test]
    fn display_is_informative() {
        let n = simple();
        let ranges = RangeAnalysis::analyze(&n, aligned_input_range(8, 8));
        let u = FaultUniverse::enumerate(&n, &ranges);
        let s = u.site(FaultId(0)).to_string();
        assert!(s.contains("s-a-"));
        assert!(s.contains("cell"));
    }
}
