//! Functional simulation of a single injected fault — the paper's
//! Section 5 experiment: feed a sine into the faulty filter and watch
//! the fault effect appear as a spike train on the output (its Fig. 2).

use crate::fault::{FaultId, FaultUniverse};
use rtl::sim::{BitSlicedSim, CellFault};
use rtl::Netlist;

/// Good and faulty output waveforms for one injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionTrace {
    /// Fault-free output, one raw word per cycle.
    pub good: Vec<i64>,
    /// Faulty output, one raw word per cycle.
    pub faulty: Vec<i64>,
}

impl InjectionTrace {
    /// Per-cycle error (faulty - good), in raw units.
    pub fn error(&self) -> Vec<i64> {
        self.good.iter().zip(&self.faulty).map(|(g, f)| f - g).collect()
    }

    /// Cycles at which the outputs differ.
    pub fn divergent_cycles(&self) -> Vec<usize> {
        self.error().iter().enumerate().filter(|(_, &e)| e != 0).map(|(i, _)| i).collect()
    }

    /// Largest absolute error, in raw units.
    pub fn peak_error(&self) -> i64 {
        self.error().iter().map(|e| e.abs()).max().unwrap_or(0)
    }
}

/// Simulates `inputs` through the good machine and a machine with the
/// given fault injected, capturing both output waveforms.
pub fn trace_fault(
    netlist: &Netlist,
    universe: &FaultUniverse,
    fault: FaultId,
    inputs: &[i64],
) -> InjectionTrace {
    let site = universe.site(fault);
    let mut sim = BitSlicedSim::new(netlist);
    sim.set_faults(
        site.node,
        vec![CellFault { cell: site.cell, fault: site.representative, lanes: 0b10 }],
    );
    let out = netlist.output_ids()[0];
    let mut good = Vec::with_capacity(inputs.len());
    let mut faulty = Vec::with_capacity(inputs.len());
    for &x in inputs {
        sim.step(x);
        good.push(sim.lane_value(out, 0));
        faulty.push(sim.lane_value(out, 1));
    }
    InjectionTrace { good, faulty }
}

/// Peak absolute output error (raw units) for each of `faults` under
/// `inputs`, batching up to 63 faulty machines per 64-lane pass —
/// roughly 60× faster than calling [`trace_fault`] per fault when
/// triaging large missed-fault sets.
pub fn peak_errors(
    netlist: &Netlist,
    universe: &FaultUniverse,
    faults: &[FaultId],
    inputs: &[i64],
) -> Vec<i64> {
    let out = netlist.output_ids()[0];
    let mut peaks = vec![0i64; faults.len()];
    for (chunk_idx, chunk) in faults.chunks(63).enumerate() {
        let mut sim = BitSlicedSim::new(netlist);
        let mut per_node: std::collections::HashMap<rtl::NodeId, Vec<CellFault>> =
            std::collections::HashMap::new();
        for (slot, &fid) in chunk.iter().enumerate() {
            let site = universe.site(fid);
            per_node.entry(site.node).or_default().push(CellFault {
                cell: site.cell,
                fault: site.representative,
                lanes: 1u64 << (slot + 1),
            });
        }
        for (node, fs) in per_node {
            sim.set_faults(node, fs);
        }
        for &x in inputs {
            sim.step(x);
            if sim.output_diff_lanes(0) == 0 {
                continue;
            }
            let good = sim.lane_value(out, 0);
            for (slot, _) in chunk.iter().enumerate() {
                let v = sim.lane_value(out, slot as u32 + 1);
                let err = (v - good).abs();
                let idx = chunk_idx * 63 + slot;
                if err > peaks[idx] {
                    peaks[idx] = err;
                }
            }
        }
    }
    peaks
}

/// Captures the good-machine waveform at an arbitrary internal node
/// (the paper's tap-20 test-signal plots, Figs. 6–7).
pub fn probe_node(netlist: &Netlist, node: rtl::NodeId, inputs: &[i64]) -> Vec<i64> {
    let mut sim = BitSlicedSim::new(netlist);
    let mut out = Vec::with_capacity(inputs.len());
    for &x in inputs {
        sim.step(x);
        out.push(sim.lane_value(node, 0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::range::{aligned_input_range, RangeAnalysis};
    use rtl::NetlistBuilder;

    fn setup() -> (Netlist, FaultUniverse) {
        let mut b = NetlistBuilder::new(10).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let s = b.shift_right(d, 1);
        let y = b.add_labeled(x, s, "acc");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let r = RangeAnalysis::analyze(&n, aligned_input_range(10, 10));
        let u = FaultUniverse::enumerate(&n, &r);
        (n, u)
    }

    #[test]
    fn trace_shows_divergence_for_detectable_fault() {
        let (n, u) = setup();
        let inputs: Vec<i64> = (0..64).map(|i| ((i * 97) % 1000) - 500).collect();
        // Find some fault that diverges on this input.
        let diverging = u.ids().find(|&f| {
            let t = trace_fault(&n, &u, f, &inputs);
            !t.divergent_cycles().is_empty()
        });
        let t = trace_fault(&n, &u, diverging.expect("some fault detectable"), &inputs);
        assert!(t.peak_error() > 0);
        assert_eq!(t.good.len(), 64);
        assert_eq!(t.faulty.len(), 64);
    }

    #[test]
    fn good_waveform_matches_probe() {
        let (n, u) = setup();
        let inputs: Vec<i64> = (0..32).map(|i| (i * 31 % 512) - 256).collect();
        let t = trace_fault(&n, &u, FaultId(0), &inputs);
        let probed = probe_node(&n, n.output_ids()[0], &inputs);
        assert_eq!(t.good, probed);
    }

    #[test]
    fn batched_peaks_match_individual_traces() {
        let (n, u) = setup();
        let inputs: Vec<i64> = (0..96).map(|i| ((i * 113) % 1000) - 500).collect();
        let ids: Vec<FaultId> = u.ids().collect();
        let batched = peak_errors(&n, &u, &ids, &inputs);
        for (i, &fid) in ids.iter().enumerate() {
            let single = trace_fault(&n, &u, fid, &inputs).peak_error();
            assert_eq!(batched[i], single, "fault {}", u.site(fid));
        }
    }

    #[test]
    fn error_is_zero_when_outputs_agree() {
        let (n, u) = setup();
        // All-zero input rarely activates anything.
        let inputs = vec![0i64; 16];
        for f in u.ids().take(5) {
            let t = trace_fault(&n, &u, f, &inputs);
            for (e, d) in t.error().iter().zip(0..) {
                if *e == 0 {
                    assert!(!t.divergent_cycles().contains(&d));
                }
            }
        }
    }
}
