//! Single-stuck-at fault simulation for digital-filter datapaths.
//!
//! Reproduces the paper's experimental engine: adder faults (registers
//! excluded), a gate-level full-adder fault model with equivalence
//! collapsing, exact sequential-machine simulation, and detection by
//! direct output comparison ("we assume no aliasing in the response
//! analyzer").
//!
//! * [`FaultUniverse`] — enumerates collapsed stuck-at fault classes
//!   over the *active* full-adder cells of every adder/subtractor
//!   (active = not a redundant sign or hardwired-zero position, per the
//!   range analysis in [`rtl::range`]). The universe size is the
//!   "faults" column of the paper's Table 1.
//! * [`ParallelFaultSimulator`] — 63 faulty machines + 1 good machine
//!   per 64-lane pass, with the passes (shards) distributed across a
//!   worker-thread pool (see [`SimOptions`]), staged fault dropping and
//!   state-preserving repacking; records each fault's first detection
//!   cycle, so fault coverage curves (paper Figs. 10–13) and
//!   end-of-test missed-fault counts (Tables 4–6) come from a single
//!   run that is bit-identical at every thread count. In *signature
//!   mode* ([`SimOptions::with_signature`]) every lane additionally
//!   folds its output stream into a per-lane MISR, so the run also
//!   reports end-of-test signatures and the exact set of
//!   compare-detected faults that would escape a signature-only check
//!   ([`FaultSimResult::aliased`]).
//! * [`kernel`] — the default execution engine: the netlist compiled
//!   once into a flat structure-of-arrays op tape ([`Tape`]) run by a
//!   straight-line machine ([`KernelSim`]) that is bit-identical to the
//!   graph walker; [`SimEngine`] selects between the two per run.
//! * [`inject`] — functional simulation of one specific fault, used for
//!   the paper's Section 5 case study (Fig. 2: a missed fault's spike
//!   train on a sine response).
//! * [`report`] — missed-fault breakdowns by tap and cell position
//!   (the paper's Fig. 3 locates its case-study fault at tap 20, three
//!   bits below the MSB).
//!
//! # Example
//!
//! ```
//! use rtl::{NetlistBuilder, range::{RangeAnalysis, aligned_input_range}};
//! use bist_faultsim::{FaultUniverse, ParallelFaultSimulator};
//!
//! let mut b = NetlistBuilder::new(8)?;
//! let x = b.input("x");
//! let d = b.register(x);
//! let y = b.add(x, d);
//! b.output(y, "y");
//! let n = b.finish()?;
//!
//! let ranges = RangeAnalysis::analyze(&n, aligned_input_range(8, 8));
//! let universe = FaultUniverse::enumerate(&n, &ranges);
//! let inputs: Vec<i64> = (0..64).map(|i| (i * 37 % 255) - 127).collect();
//! let result = ParallelFaultSimulator::new(&n, &universe).run(&inputs);
//! assert!(result.detected_count() > universe.len() / 2);
//! # Ok::<(), rtl::RtlError>(())
//! ```

#![forbid(unsafe_code)]

mod fault;
mod sim;

pub mod census;
pub mod inject;
pub mod kernel;
pub mod report;

pub use fault::{FaultId, FaultSite, FaultUniverse};
pub use kernel::{KernelSim, OpKind, Tape};
pub use sim::{
    CancelToken, Cancelled, FaultSimResult, ParallelFaultSimulator, SignatureConfig, SignatureSet,
    SimEngine, SimOptions, StageSchedule,
};
