use crate::fault::{FaultId, FaultUniverse};
use crate::kernel::{KernelSim, Tape};
use obs::Registry;
use rtl::misr::MisrBank;
use rtl::sim::{BitSlicedSim, CellFault};
use rtl::Netlist;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A shared cooperative-cancellation handle: an atomic flag plus an
/// optional hard deadline. Clones observe the same flag, so a token
/// handed to a long fault-simulation run can be cancelled from another
/// thread (the campaign daemon's `CancelJob` path). The simulator
/// checks the token **at stage boundaries** only — between
/// [`StageSchedule`] stages, never inside the bit-sliced inner loop —
/// so cancellation latency is one stage, and a run that completes was
/// never perturbed.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a hard deadline: the token reads as cancelled once
    /// `deadline` passes, with no explicit [`CancelToken::cancel`] call.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the token reads cancelled *because of its deadline*
    /// (used to distinguish "timed out" from "cancelled" job states).
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The error a cancellable fault-simulation run returns when its
/// [`CancelToken`] fired at a stage boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cancelled {
    /// The cycle (start of the unentered stage) simulation stopped at.
    pub at_cycle: u32,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault simulation cancelled at stage boundary (cycle {})", self.at_cycle)
    }
}

impl Error for Cancelled {}

/// Faulty machines per 64-lane bit-sliced pass (lane 0 is the good
/// machine).
const LANES_PER_PASS: usize = 63;

/// Fault shards batched into one kernel machine: the tape executes
/// this many independent 64-lane pattern words per op, so the
/// serialized ripple-carry chain of one shard pipelines against its
/// neighbours' and the per-op decode cost is amortized. The walker
/// always carries one word.
const KERNEL_WORDS: usize = 16;

/// Staged fault-dropping schedule: simulation restarts lane packing at
/// each boundary, carrying every surviving faulty machine's register
/// state across. Early stages are short so the bulk of (easy) faults is
/// dropped after few cycles; only the hard tail pays for the full test
/// length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSchedule {
    boundaries: Vec<u32>,
}

impl StageSchedule {
    /// The default schedule: repack at cycles 64, 256 and 1024.
    pub fn new() -> Self {
        StageSchedule { boundaries: vec![64, 256, 1024] }
    }

    /// A custom schedule from ascending repack cycles.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not strictly ascending.
    pub fn with_boundaries(boundaries: Vec<u32>) -> Self {
        assert!(boundaries.windows(2).all(|w| w[0] < w[1]), "boundaries must ascend");
        StageSchedule { boundaries }
    }

    /// Stage extents `(start, end)` for a test of `total` cycles.
    fn stages(&self, total: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut start = 0u32;
        for &b in self.boundaries.iter().filter(|&&b| b < total) {
            out.push((start, b));
            start = b;
        }
        if start < total {
            out.push((start, total));
        }
        out
    }
}

impl Default for StageSchedule {
    fn default() -> Self {
        Self::new()
    }
}

/// Configuration of the response-compacting signature register used by
/// [`SimOptions::with_signature`]: the MISR's width and feedback
/// polynomial (see [`rtl::misr`]). The simulator takes the polynomial
/// as data — choosing one (the tabulated primitive polynomials live in
/// the `tpg` crate) is the session layer's job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureConfig {
    /// Register width in bits (`1..=63`).
    pub width: u32,
    /// Feedback polynomial; an `x^width` term, if present, is ignored.
    pub poly: u64,
}

/// Which bit-sliced execution engine a run simulates machines with.
///
/// Both engines are bit-identical — same detection cycles, signatures
/// and register snapshots on every design (the differential tests and
/// the `kernel` experiments cell hold them equal) — so this knob trades
/// only speed: the compiled tape eliminates per-node dispatch and the
/// walker's whole-node faulted slow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// The compiled straight-line tape ([`crate::kernel::KernelSim`]),
    /// the default since PR 10.
    #[default]
    Kernel,
    /// The original graph walker ([`rtl::sim::BitSlicedSim`]), retained
    /// for differential testing.
    Walker,
}

impl SimEngine {
    /// Canonical lowercase name (`"kernel"` / `"walker"`), used in
    /// cache keys and on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            SimEngine::Kernel => "kernel",
            SimEngine::Walker => "walker",
        }
    }

    /// Parses a canonical engine name.
    pub fn parse(s: &str) -> Option<SimEngine> {
        match s {
            "kernel" => Some(SimEngine::Kernel),
            "walker" => Some(SimEngine::Walker),
            _ => None,
        }
    }
}

/// Options controlling a fault-simulation run: the fault-dropping
/// [`StageSchedule`] and the number of worker threads the fault
/// universe is sharded across.
///
/// Results are **bit-identical at every thread count**: each 63-fault
/// shard is an independent bit-sliced machine whose detection cycles do
/// not depend on any other shard, and shard outcomes are merged at
/// every stage boundary in a deterministic order.
#[derive(Debug, Clone)]
pub struct SimOptions {
    schedule: StageSchedule,
    threads: usize,
    metrics: Option<Arc<Registry>>,
    cancel: Option<CancelToken>,
    signature: Option<SignatureConfig>,
    engine: SimEngine,
}

impl SimOptions {
    /// Default options: the default stage schedule, one worker per
    /// available core, no metrics, not cancellable, direct-compare
    /// detection (no signature compaction).
    pub fn new() -> Self {
        SimOptions {
            schedule: StageSchedule::new(),
            threads: 0,
            metrics: None,
            cancel: None,
            signature: None,
            engine: SimEngine::default(),
        }
    }

    /// Overrides the fault-dropping stage schedule.
    pub fn with_schedule(mut self, schedule: StageSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the worker-thread count. `0` (the default) means one
    /// worker per core reported by
    /// [`std::thread::available_parallelism`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a metric registry. The simulator records per-stage
    /// spans (`faultsim.stage<i>`), per-shard and merge latency
    /// histograms (`faultsim.shard_ms`, `faultsim.merge_ms`) and
    /// stage/shard/fault counters into it. Purely observational:
    /// detection results are bit-identical with and without metrics.
    pub fn with_metrics(mut self, metrics: Arc<Registry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached metric registry, if any.
    pub fn metrics(&self) -> Option<&Arc<Registry>> {
        self.metrics.as_ref()
    }

    /// Attaches a cancellation token, checked at every stage boundary
    /// by [`ParallelFaultSimulator::try_run`].
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Enables signature mode: every lane folds its output stream into
    /// a per-lane MISR ([`rtl::misr::MisrBank`]) inside the bit-sliced
    /// inner loop, and the run reports per-fault end-of-test signatures
    /// next to the direct-compare detection cycles.
    ///
    /// Two semantic consequences, both faithful to a hardware MISR
    /// readout at the end of the test:
    ///
    /// * **No fault dropping.** A signature exists only at the end of
    ///   the full test, so every faulty machine is simulated to the
    ///   last vector; [`StageSchedule`] boundaries become pure repack
    ///   (and cancellation) points. Expect signature runs to cost more
    ///   wall-clock than compare runs — that cost is what the O(lanes)
    ///   response memory buys.
    /// * **Aliasing is observable.** A fault whose output stream
    ///   diverged (compare-detected) but whose final signature equals
    ///   the fault-free one escapes the signature check; such faults
    ///   are reported by [`FaultSimResult::aliased`], never silently
    ///   dropped. Detection cycles themselves stay bit-identical to a
    ///   compare-mode run.
    pub fn with_signature(mut self, signature: SignatureConfig) -> Self {
        self.signature = Some(signature);
        self
    }

    /// The signature configuration, if signature mode is enabled.
    pub fn signature(&self) -> Option<SignatureConfig> {
        self.signature
    }

    /// Selects the execution engine (default: [`SimEngine::Kernel`]).
    /// Detection results are bit-identical under either engine.
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The selected execution engine.
    pub fn engine(&self) -> SimEngine {
        self.engine
    }

    /// The configured stage schedule.
    pub fn schedule(&self) -> &StageSchedule {
        &self.schedule
    }

    /// The configured thread count (`0` = auto-detect).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The thread count a run will actually use: the configured count,
    /// or the machine's available parallelism when unset.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// End-of-test signatures of a signature-mode run (see
/// [`SimOptions::with_signature`]): the fault-free machine's signature
/// plus one final MISR state per fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureSet {
    /// The fault-free machine's end-of-test signature.
    pub good: u64,
    /// Each fault's end-of-test signature, indexed by
    /// [`FaultId::index`].
    pub per_fault: Vec<u64>,
}

/// Result of a fault-simulation run.
#[derive(Debug, Clone)]
pub struct FaultSimResult {
    detection_cycle: Vec<Option<u32>>,
    total_cycles: u32,
    signatures: Option<SignatureSet>,
}

impl FaultSimResult {
    /// First cycle (0-based) at which each fault was detected, `None`
    /// for missed faults. Indexed by [`FaultId::index`].
    pub fn detection_cycles(&self) -> &[Option<u32>] {
        &self.detection_cycle
    }

    /// Length of the applied test sequence.
    pub fn total_cycles(&self) -> u32 {
        self.total_cycles
    }

    /// Number of detected faults.
    pub fn detected_count(&self) -> usize {
        self.detection_cycle.iter().filter(|d| d.is_some()).count()
    }

    /// Ids of faults never detected.
    pub fn missed(&self) -> Vec<FaultId> {
        self.detection_cycle
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| FaultId(i as u32))
            .collect()
    }

    /// Number of faults still undetected after `cycle` vectors.
    pub fn missed_after(&self, cycle: u32) -> usize {
        self.detection_cycle.iter().filter(|d| d.is_none_or(|c| c >= cycle)).count()
    }

    /// Fault coverage (fraction detected) after `cycle` vectors.
    pub fn coverage_after(&self, cycle: u32) -> f64 {
        if self.detection_cycle.is_empty() {
            return 1.0;
        }
        1.0 - self.missed_after(cycle) as f64 / self.detection_cycle.len() as f64
    }

    /// Coverage curve sampled at the given cycle counts.
    pub fn curve(&self, cycles: &[u32]) -> Vec<(u32, f64)> {
        cycles.iter().map(|&c| (c, self.coverage_after(c))).collect()
    }

    /// The end-of-test signatures, when the run compacted responses
    /// (`None` for direct-compare runs).
    pub fn signatures(&self) -> Option<&SignatureSet> {
        self.signatures.as_ref()
    }

    /// The fault-free machine's end-of-test signature, in signature
    /// mode.
    pub fn good_signature(&self) -> Option<u64> {
        self.signatures.as_ref().map(|s| s.good)
    }

    /// Faults that *escape* the signature check: compare-detected (the
    /// output stream diverged at some cycle) yet ending with a
    /// signature equal to the fault-free one. Empty for compare-mode
    /// runs, and expected empty for a well-sized MISR — the analytical
    /// escape probability is ≈ `2^-width` per detected fault (the
    /// `L4xx` lints budget it; `DESIGN.md` §10 derives it).
    pub fn aliased(&self) -> Vec<FaultId> {
        let Some(sigs) = &self.signatures else { return Vec::new() };
        self.detection_cycle
            .iter()
            .enumerate()
            .filter(|&(i, d)| d.is_some() && sigs.per_fault[i] == sigs.good)
            .map(|(i, _)| FaultId(i as u32))
            .collect()
    }

    /// Number of faults a signature-only tester would flag: final
    /// signature differs from the fault-free one. Equals
    /// [`FaultSimResult::detected_count`] minus the aliased count. In
    /// compare mode this is just `detected_count`.
    pub fn signature_detected_count(&self) -> usize {
        self.detected_count() - self.aliased().len()
    }

    /// Expands a collapsed-universe result back to a full universe:
    /// full-universe fault `i` takes the verdict (detection cycle and,
    /// in signature mode, end-of-test signature) of the representative
    /// class `class_map[i]` it collapsed into. Because every shard's
    /// detection cycle is intrinsic to its fault — independent of
    /// shard-mates and stage packing — a representative's verdict *is*
    /// the verdict every exactly-equivalent member would have received,
    /// so the expanded result is byte-identical to simulating the full
    /// universe directly.
    ///
    /// # Panics
    ///
    /// Panics if a class index is out of range for this result.
    pub fn expand_classes(&self, class_map: &[u32]) -> FaultSimResult {
        let detection_cycle = class_map.iter().map(|&c| self.detection_cycle[c as usize]).collect();
        let signatures = self.signatures.as_ref().map(|s| SignatureSet {
            good: s.good,
            per_fault: class_map.iter().map(|&c| s.per_fault[c as usize]).collect(),
        });
        FaultSimResult { detection_cycle, total_cycles: self.total_cycles, signatures }
    }
}

/// One faulty machine's carried state at a stage boundary: its
/// register snapshot plus, in signature mode, its partially
/// accumulated MISR state.
struct MachineState {
    regs: Vec<u64>,
    misr: u64,
}

/// What one shard (a group of up to 63 faults) produced over one stage:
/// detections and the machine-state snapshots of the survivors (in
/// signature mode every fault survives — dropping would truncate its
/// signature).
struct ShardOutcome {
    detections: Vec<(FaultId, u32)>,
    survivors: Vec<(FaultId, MachineState)>,
}

/// One bit-sliced machine under either execution engine. The two
/// variants expose identical semantics (the kernel is compiled from the
/// same netlist the walker interprets and is differentially tested
/// bit-identical), so shard code is engine-agnostic.
enum ShardMachine<'a> {
    Walker(BitSlicedSim<'a>),
    Kernel(KernelSim<'a>),
}

impl<'a> ShardMachine<'a> {
    /// A fresh fault-free machine: a tape-backed kernel carrying
    /// `words` pattern words when the run compiled a tape, the graph
    /// walker (always single-word) otherwise.
    fn new(netlist: &'a Netlist, tape: Option<&'a Tape>, words: usize) -> Self {
        match tape {
            Some(t) => ShardMachine::Kernel(KernelSim::with_words(t, words)),
            None => {
                debug_assert_eq!(words, 1, "the walker carries exactly one word");
                ShardMachine::Walker(BitSlicedSim::new(netlist))
            }
        }
    }

    fn step(&mut self, input_raw: i64) {
        match self {
            ShardMachine::Walker(s) => s.step(input_raw),
            ShardMachine::Kernel(s) => s.step(input_raw),
        }
    }

    fn set_faults_in_word(&mut self, word: usize, node: rtl::NodeId, faults: Vec<CellFault>) {
        match self {
            ShardMachine::Walker(s) => {
                debug_assert_eq!(word, 0);
                s.set_faults(node, faults);
            }
            ShardMachine::Kernel(s) => s.set_faults_in_word(word, node, faults),
        }
    }

    fn fold_outputs(&self, bank: &mut MisrBank) {
        match self {
            ShardMachine::Walker(s) => s.fold_outputs(bank),
            ShardMachine::Kernel(s) => s.fold_outputs(bank),
        }
    }

    fn fold_outputs_in_word(&self, word: usize, bank: &mut MisrBank) {
        match self {
            ShardMachine::Walker(s) => {
                debug_assert_eq!(word, 0);
                s.fold_outputs(bank);
            }
            ShardMachine::Kernel(s) => s.fold_outputs_in_word(word, bank),
        }
    }

    fn output_diff_lanes_in_word(&self, word: usize, reference_lane: u32) -> u64 {
        match self {
            ShardMachine::Walker(s) => {
                debug_assert_eq!(word, 0);
                s.output_diff_lanes(reference_lane)
            }
            ShardMachine::Kernel(s) => s.output_diff_lanes_in_word(word, reference_lane),
        }
    }

    fn register_state_lane(&self, lane: u32) -> Vec<u64> {
        match self {
            ShardMachine::Walker(s) => s.register_state_lane(lane),
            ShardMachine::Kernel(s) => s.register_state_lane(lane),
        }
    }

    fn register_state_lane_in_word(&self, word: usize, lane: u32) -> Vec<u64> {
        match self {
            ShardMachine::Walker(s) => {
                debug_assert_eq!(word, 0);
                s.register_state_lane(lane)
            }
            ShardMachine::Kernel(s) => s.register_state_lane_in_word(word, lane),
        }
    }

    fn set_register_state_lane_in_word(&mut self, word: usize, lane: u32, snapshot: &[u64]) {
        match self {
            ShardMachine::Walker(s) => {
                debug_assert_eq!(word, 0);
                s.set_register_state_lane(lane, snapshot);
            }
            ShardMachine::Kernel(s) => s.set_register_state_lane_in_word(word, lane, snapshot),
        }
    }
}

/// The staged, sharded, 64-lane parallel fault simulator.
///
/// Two axes of parallelism compose: within one shard, 63 faulty
/// machines plus the good machine are evaluated word-parallel in the
/// bit-sliced lanes of a single `u64`; across shards, independent
/// [`BitSlicedSim`] instances are distributed over a scoped worker pool
/// (see [`SimOptions::with_threads`]). Per-shard state is merged at
/// every stage boundary, and results are bit-identical at any thread
/// count.
pub struct ParallelFaultSimulator<'a> {
    netlist: &'a Netlist,
    universe: &'a FaultUniverse,
    options: SimOptions,
}

impl<'a> ParallelFaultSimulator<'a> {
    /// Creates a simulator with default options (default stage
    /// schedule, one worker thread per available core).
    pub fn new(netlist: &'a Netlist, universe: &'a FaultUniverse) -> Self {
        ParallelFaultSimulator { netlist, universe, options: SimOptions::new() }
    }

    /// Overrides all run options.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the stage schedule.
    pub fn with_schedule(mut self, schedule: StageSchedule) -> Self {
        self.options = self.options.with_schedule(schedule);
        self
    }

    /// Overrides the worker-thread count (`0` = one per core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.options = self.options.with_threads(threads);
        self
    }

    /// Attaches a metric registry (see [`SimOptions::with_metrics`]).
    pub fn with_metrics(mut self, metrics: Arc<Registry>) -> Self {
        self.options = self.options.with_metrics(metrics);
        self
    }

    /// Runs the complete test sequence (one raw input word per cycle,
    /// already aligned to the netlist's input width) against every fault
    /// in the universe.
    ///
    /// Detection is a direct compare of all outputs against the good
    /// machine (no compaction aliasing). Faulty-machine register state
    /// is carried exactly across stage repacks, so results are identical
    /// to simulating each fault individually from cycle 0 — and
    /// identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if a [`CancelToken`] attached via
    /// [`SimOptions::with_cancel`] fires mid-run; cancellable callers
    /// must use [`ParallelFaultSimulator::try_run`].
    pub fn run(&self, inputs: &[i64]) -> FaultSimResult {
        self.try_run(inputs).expect("run() without a cancel token cannot be cancelled")
    }

    /// Like [`ParallelFaultSimulator::run`], but checks the attached
    /// [`CancelToken`] (if any) at every [`StageSchedule`] boundary and
    /// returns [`Cancelled`] instead of entering the next stage.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token fired; partial detection results
    /// are discarded (reruns are cheap relative to serving wrong data).
    pub fn try_run(&self, inputs: &[i64]) -> Result<FaultSimResult, Cancelled> {
        let total = inputs.len() as u32;
        let metrics = self.options.metrics.as_deref();
        let mut detection: Vec<Option<u32>> = vec![None; self.universe.len()];
        if self.universe.is_empty() || total == 0 {
            // Nothing absorbed: every signature is the zero reset state.
            let signatures = self
                .options
                .signature
                .map(|_| SignatureSet { good: 0, per_fault: vec![0; self.universe.len()] });
            let result =
                FaultSimResult { detection_cycle: detection, total_cycles: total, signatures };
            Self::record_totals(metrics, &result);
            return Ok(result);
        }
        let threads = self.options.effective_threads().max(1);

        // The kernel engine compiles the netlist once; the immutable
        // tape is shared by the good machine and every shard on every
        // thread.
        let tape = (self.options.engine == SimEngine::Kernel).then(|| Tape::compile(self.netlist));
        let tape = tape.as_ref();

        // Good-machine register state at the start of the current stage,
        // and (in signature mode) its response-compacting MISR. All 64
        // lanes of `good_sim` are fault-free copies, so lane 0 of its
        // bank is the fault-free signature — computed by the exact
        // word-parallel code path the shards use.
        let mut good_sim = ShardMachine::new(self.netlist, tape, 1);
        let mut good = MachineState { regs: good_sim.register_state_lane(0), misr: 0 };
        let mut good_bank = self.options.signature.map(|cfg| {
            MisrBank::with_polynomial(cfg.width, cfg.poly)
                .expect("signature width validated by the session layer")
        });

        // Surviving faults and their machine states at stage start.
        let mut active: Vec<FaultId> = self.universe.ids().collect();
        let mut states: HashMap<FaultId, MachineState> = HashMap::new();

        for (stage_index, (start, end)) in
            self.options.schedule.stages(total).into_iter().enumerate()
        {
            if active.is_empty() {
                break;
            }
            if self.options.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                if let Some(m) = metrics {
                    m.counter("faultsim.cancelled_runs").inc();
                }
                return Err(Cancelled { at_cycle: start });
            }
            let stage_span = metrics.map(|m| obs::span!(m, "faultsim.stage{}", stage_index));
            let shards: Vec<&[FaultId]> = active.chunks(LANES_PER_PASS).collect();
            // The kernel engine batches several shards into one
            // multi-word machine; the walker runs one shard per
            // machine. Results are identical either way — each word
            // carries its own faults, banks and survivor snapshots.
            let words = if tape.is_some() { KERNEL_WORDS } else { 1 };
            let groups: Vec<&[&[FaultId]]> = shards.chunks(words).collect();
            let workers = threads.min(groups.len());
            if let Some(m) = metrics {
                m.counter("faultsim.stages").inc();
                m.counter("faultsim.shards").add(shards.len() as u64);
                m.counter("faultsim.groups").add(groups.len() as u64);
            }

            let outcomes: Vec<ShardOutcome> = if workers <= 1 {
                let out = groups
                    .iter()
                    .map(|g| self.simulate_shard_group(tape, g, &good, &states, inputs, start, end))
                    .collect();
                for cycle in start..end {
                    good_sim.step(inputs[cycle as usize]);
                    if let Some(bank) = good_bank.as_mut() {
                        good_sim.fold_outputs(bank);
                    }
                }
                out
            } else {
                // Workers pull group indices from a shared counter so a
                // straggler group cannot serialize the stage; the main
                // thread advances the good machine meanwhile.
                let next = AtomicUsize::new(0);
                let collected: Mutex<Vec<(usize, ShardOutcome)>> =
                    Mutex::new(Vec::with_capacity(groups.len()));
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| {
                            let mut local: Vec<(usize, ShardOutcome)> = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= groups.len() {
                                    break;
                                }
                                local.push((
                                    i,
                                    self.simulate_shard_group(
                                        tape, groups[i], &good, &states, inputs, start, end,
                                    ),
                                ));
                            }
                            collected.lock().expect("no panics hold the lock").extend(local);
                        });
                    }
                    for cycle in start..end {
                        good_sim.step(inputs[cycle as usize]);
                        if let Some(bank) = good_bank.as_mut() {
                            good_sim.fold_outputs(bank);
                        }
                    }
                });
                let mut indexed = collected.into_inner().expect("workers joined");
                indexed.sort_by_key(|&(i, _)| i);
                indexed.into_iter().map(|(_, o)| o).collect()
            };
            good.regs = good_sim.register_state_lane(0);
            if let Some(bank) = good_bank.as_ref() {
                good.misr = bank.lane_signature(0);
            }

            // Stage-boundary merge, in shard order.
            let merge_started = metrics.map(|_| Instant::now());
            let mut survivors: Vec<FaultId> = Vec::new();
            let mut new_states: HashMap<FaultId, MachineState> = HashMap::new();
            for outcome in outcomes {
                for (fid, cycle) in outcome.detections {
                    // First detection wins: signature mode keeps detected
                    // faults alive, so later stages re-observe their
                    // (still diverging) outputs.
                    let slot = &mut detection[fid.index()];
                    if slot.is_none() {
                        *slot = Some(cycle);
                    }
                }
                for (fid, state) in outcome.survivors {
                    survivors.push(fid);
                    new_states.insert(fid, state);
                }
            }
            survivors.sort();
            active = survivors;
            states = new_states;
            if let (Some(m), Some(t)) = (metrics, merge_started) {
                m.histogram("faultsim.merge_ms").record(t.elapsed().as_secs_f64() * 1000.0);
            }
            drop(stage_span);
        }

        // Signature readout: every fault survived to the end in
        // signature mode, so its final MISR state sits in `states`.
        let signatures = good_bank.map(|bank| SignatureSet {
            good: bank.lane_signature(0),
            per_fault: (0..self.universe.len())
                .map(|i| states.get(&FaultId(i as u32)).map_or(0, |s| s.misr))
                .collect(),
        });
        let result = FaultSimResult { detection_cycle: detection, total_cycles: total, signatures };
        Self::record_totals(metrics, &result);
        Ok(result)
    }

    /// Final detected/undetected (and, in signature mode, aliased)
    /// counters for a completed run.
    fn record_totals(metrics: Option<&Registry>, result: &FaultSimResult) {
        if let Some(m) = metrics {
            let detected = result.detected_count();
            m.counter("faultsim.faults_detected").add(detected as u64);
            m.counter("faultsim.faults_undetected")
                .add((result.detection_cycle.len() - detected) as u64);
            if result.signatures.is_some() {
                m.counter("faultsim.faults_aliased").add(result.aliased().len() as u64);
            }
        }
    }

    /// Simulates a group of shards (up to 63 faults each) over one
    /// stage on a single machine, starting every lane of every word
    /// from its stage-entry register state (and, in signature mode, its
    /// partial MISR state). On the walker a group is always exactly one
    /// shard; the kernel batches [`KERNEL_WORDS`] shards into one
    /// multi-word machine so their carry chains pipeline. Each word is
    /// fully independent of every other word and of every other group,
    /// so groups can run on any thread in any order.
    #[allow(clippy::too_many_arguments)]
    fn simulate_shard_group(
        &self,
        tape: Option<&Tape>,
        chunks: &[&[FaultId]],
        good: &MachineState,
        states: &HashMap<FaultId, MachineState>,
        inputs: &[i64],
        start: u32,
        end: u32,
    ) -> ShardOutcome {
        let shard_started = self.options.metrics.as_ref().map(|_| Instant::now());
        let words = chunks.len();
        let mut sim = ShardMachine::new(self.netlist, tape, words);
        let mut banks: Option<Vec<MisrBank>> = self.options.signature.map(|cfg| {
            (0..words)
                .map(|_| {
                    let mut b = MisrBank::with_polynomial(cfg.width, cfg.poly)
                        .expect("signature width validated by the session layer");
                    b.fill(good.misr);
                    b
                })
                .collect()
        });
        // All lanes of every word start from the good state, then
        // faulty lanes get their own diverged state (registers and
        // partial signature); finally each word's faults are injected,
        // batched per node.
        for (word, group) in chunks.iter().enumerate() {
            for lane in 0..64 {
                sim.set_register_state_lane_in_word(word, lane, &good.regs);
            }
            for (slot, &fid) in group.iter().enumerate() {
                let lane = slot as u32 + 1;
                if let Some(s) = states.get(&fid) {
                    sim.set_register_state_lane_in_word(word, lane, &s.regs);
                    if let Some(banks) = banks.as_mut() {
                        banks[word].set_lane_signature(lane, s.misr);
                    }
                }
            }
            let mut per_node: HashMap<rtl::NodeId, Vec<CellFault>> = HashMap::new();
            for (slot, &fid) in group.iter().enumerate() {
                let site = self.universe.site(fid);
                per_node.entry(site.node).or_default().push(CellFault {
                    cell: site.cell,
                    fault: site.representative,
                    lanes: 1u64 << (slot + 1),
                });
            }
            for (node, faults) in per_node {
                sim.set_faults_in_word(word, node, faults);
            }
        }

        let mut detections: Vec<(FaultId, u32)> = Vec::new();
        let mut undetected: Vec<u64> = chunks
            .iter()
            .map(|group| {
                let mut mask = 0u64;
                for slot in 0..group.len() {
                    mask |= 1u64 << (slot + 1);
                }
                mask
            })
            .collect();
        let mut live = undetected.iter().filter(|&&m| m != 0).count();
        for cycle in start..end {
            sim.step(inputs[cycle as usize]);
            if let Some(banks) = banks.as_mut() {
                for (word, bank) in banks.iter_mut().enumerate() {
                    sim.fold_outputs_in_word(word, bank);
                }
            }
            for (word, group) in chunks.iter().enumerate() {
                let diff = sim.output_diff_lanes_in_word(word, 0) & undetected[word];
                if diff != 0 {
                    let mut d = diff;
                    while d != 0 {
                        let lane = d.trailing_zeros();
                        d &= d - 1;
                        detections.push((group[(lane - 1) as usize], cycle));
                    }
                    undetected[word] &= !diff;
                    if undetected[word] == 0 {
                        live -= 1;
                    }
                }
            }
            // Compare mode drops a fully detected group early; a
            // signature only exists at end of test, so signature mode
            // always plays the stage out.
            if live == 0 && banks.is_none() {
                break;
            }
        }
        // Snapshot survivors' states for the next stage: the undetected
        // lanes in compare mode, every lane in signature mode.
        let mut survivors: Vec<(FaultId, MachineState)> = Vec::new();
        for (word, group) in chunks.iter().enumerate() {
            match banks.as_ref() {
                Some(banks) => {
                    for (slot, &fid) in group.iter().enumerate() {
                        let lane = slot as u32 + 1;
                        survivors.push((
                            fid,
                            MachineState {
                                regs: sim.register_state_lane_in_word(word, lane),
                                misr: banks[word].lane_signature(lane),
                            },
                        ));
                    }
                }
                None => {
                    let mut m = undetected[word];
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let fid = group[(lane - 1) as usize];
                        survivors.push((
                            fid,
                            MachineState {
                                regs: sim.register_state_lane_in_word(word, lane),
                                misr: 0,
                            },
                        ));
                    }
                }
            }
        }
        if let (Some(m), Some(t)) = (self.options.metrics.as_deref(), shard_started) {
            m.histogram("faultsim.shard_ms").record(t.elapsed().as_secs_f64() * 1000.0);
        }
        ShardOutcome { detections, survivors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultUniverse;
    use rtl::range::{aligned_input_range, RangeAnalysis};
    use rtl::sim::CellFault;
    use rtl::{Netlist, NetlistBuilder};

    fn filterish(width: u32) -> Netlist {
        // Three-tap FIR-ish structure with shifts and a subtractor.
        let mut b = NetlistBuilder::new(width).unwrap();
        let x = b.input("x");
        let t0 = b.shift_right(x, 1);
        let d1 = b.register(x);
        let t1 = b.shift_right(d1, 2);
        let a1 = b.add_labeled(t0, t1, "a1");
        let d2 = b.register(d1);
        let t2 = b.shift_right(d2, 3);
        let a2 = b.sub_labeled(a1, t2, "a2");
        b.output(a2, "y");
        b.finish().unwrap()
    }

    fn universe(n: &Netlist) -> FaultUniverse {
        let r = RangeAnalysis::analyze(n, aligned_input_range(n.width(), n.width()));
        FaultUniverse::enumerate(n, &r)
    }

    fn pseudo_inputs(n: usize, width: u32) -> Vec<i64> {
        let mut state = 0x123456789ABCDEFu64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                fixedpoint::QFormat::new(width, width - 1)
                    .unwrap()
                    .sign_extend(state >> (64 - width))
            })
            .collect()
    }

    /// Serial (one-fault-at-a-time) reference implementation.
    fn serial_reference(n: &Netlist, u: &FaultUniverse, inputs: &[i64]) -> Vec<Option<u32>> {
        u.ids()
            .map(|fid| {
                let site = u.site(fid);
                let mut sim = BitSlicedSim::new(n);
                sim.set_faults(
                    site.node,
                    vec![CellFault { cell: site.cell, fault: site.representative, lanes: 2 }],
                );
                for (cycle, &x) in inputs.iter().enumerate() {
                    sim.step(x);
                    if sim.output_diff_lanes(0) & 2 != 0 {
                        return Some(cycle as u32);
                    }
                }
                None
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(100, 10);
        let parallel = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![16, 48]))
            .run(&inputs);
        let serial = serial_reference(&n, &u, &inputs);
        assert_eq!(parallel.detection_cycles(), &serial[..]);
    }

    #[test]
    fn repacking_preserves_detection_times() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(120, 10);
        let one_stage = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![]))
            .run(&inputs);
        let many_stages = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![8, 16, 32, 64]))
            .run(&inputs);
        assert_eq!(one_stage.detection_cycles(), many_stages.detection_cycles());
    }

    #[test]
    fn most_faults_detected_by_random_patterns() {
        let n = filterish(12);
        let u = universe(&n);
        let inputs = pseudo_inputs(512, 12);
        let result = ParallelFaultSimulator::new(&n, &u).run(&inputs);
        let coverage = result.coverage_after(512);
        assert!(coverage > 0.9, "coverage {coverage}");
    }

    #[test]
    fn coverage_is_monotone_in_test_length() {
        let n = filterish(12);
        let u = universe(&n);
        let inputs = pseudo_inputs(256, 12);
        let result = ParallelFaultSimulator::new(&n, &u).run(&inputs);
        let mut prev = 0.0;
        for c in [1u32, 4, 16, 64, 256] {
            let cov = result.coverage_after(c);
            assert!(cov >= prev);
            prev = cov;
        }
    }

    #[test]
    fn empty_inputs_detect_nothing() {
        let n = filterish(10);
        let u = universe(&n);
        let result = ParallelFaultSimulator::new(&n, &u).run(&[]);
        assert_eq!(result.detected_count(), 0);
        assert_eq!(result.missed().len(), u.len());
    }

    #[test]
    fn missed_after_interpolates_curve() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(64, 10);
        let result = ParallelFaultSimulator::new(&n, &u).run(&inputs);
        assert_eq!(result.missed_after(0), u.len());
        assert_eq!(result.missed_after(64), result.missed().len());
        let curve = result.curve(&[0, 16, 64]);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].1, 0.0);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn bad_schedule_panics() {
        StageSchedule::with_boundaries(vec![64, 64]);
    }

    #[test]
    fn sharded_runs_match_serial_at_every_thread_count() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(150, 10);
        let serial = serial_reference(&n, &u, &inputs);
        for threads in [1usize, 2, 3, 4, 8] {
            let result = ParallelFaultSimulator::new(&n, &u)
                .with_schedule(StageSchedule::with_boundaries(vec![16, 48, 96]))
                .with_threads(threads)
                .run(&inputs);
            assert_eq!(
                result.detection_cycles(),
                &serial[..],
                "threads = {threads} diverged from serial"
            );
        }
    }

    #[test]
    fn instrumentation_observes_without_changing_results() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(150, 10);
        let plain = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![16, 48]))
            .with_threads(2)
            .run(&inputs);

        let registry = Arc::new(Registry::new());
        let metered = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![16, 48]))
            .with_threads(2)
            .with_metrics(Arc::clone(&registry))
            .run(&inputs);
        assert_eq!(plain.detection_cycles(), metered.detection_cycles());

        let s = registry.snapshot();
        let stages = s.counters["faultsim.stages"];
        assert!(
            (1..=3).contains(&stages),
            "16/48 boundaries over 150 cycles give at most 3 stages, got {stages}"
        );
        assert!(s.counters["faultsim.shards"] >= stages, "one shard minimum per stage");
        assert_eq!(
            s.counters["faultsim.faults_detected"] + s.counters["faultsim.faults_undetected"],
            u.len() as u64
        );
        assert_eq!(s.counters["faultsim.faults_detected"], metered.detected_count() as u64);
        // Every stage span recorded, shard and merge latencies sampled.
        for stage in 0..stages {
            assert_eq!(
                s.spans.iter().filter(|sp| sp.name == format!("faultsim.stage{stage}")).count(),
                1
            );
        }
        // The dispatch-latency histogram samples once per machine
        // dispatch — a group of shards on the kernel, one shard on the
        // walker — so it tracks the group counter, not the shard one.
        assert_eq!(s.histograms["faultsim.shard_ms"].count, s.counters["faultsim.groups"]);
        assert!(s.counters["faultsim.groups"] <= s.counters["faultsim.shards"]);
        assert_eq!(s.histograms["faultsim.merge_ms"].count, stages);
    }

    #[test]
    fn empty_run_still_reports_totals() {
        let n = filterish(10);
        let u = universe(&n);
        let registry = Arc::new(Registry::new());
        let result =
            ParallelFaultSimulator::new(&n, &u).with_metrics(Arc::clone(&registry)).run(&[]);
        assert_eq!(result.detected_count(), 0);
        let s = registry.snapshot();
        assert_eq!(s.counters["faultsim.faults_detected"], 0);
        assert_eq!(s.counters["faultsim.faults_undetected"], u.len() as u64);
    }

    #[test]
    fn pre_cancelled_token_stops_at_the_first_boundary() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(150, 10);
        let token = CancelToken::new();
        token.cancel();
        let err = ParallelFaultSimulator::new(&n, &u)
            .with_options(SimOptions::new().with_cancel(token))
            .try_run(&inputs)
            .unwrap_err();
        assert_eq!(err.at_cycle, 0);
        assert!(err.to_string().contains("cycle 0"), "{err}");
    }

    #[test]
    fn deadline_cancels_between_stages() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(512, 10);
        // Already-expired deadline: the run must stop at some boundary
        // of the many-stage schedule without an explicit cancel().
        let token = CancelToken::new().with_deadline(Instant::now());
        assert!(token.deadline_exceeded());
        let registry = Arc::new(Registry::new());
        let err = ParallelFaultSimulator::new(&n, &u)
            .with_options(
                SimOptions::new()
                    .with_cancel(token)
                    .with_metrics(Arc::clone(&registry))
                    .with_schedule(StageSchedule::with_boundaries(vec![8, 16, 32, 64, 128, 256])),
            )
            .try_run(&inputs)
            .unwrap_err();
        assert_eq!(err.at_cycle, 0);
        assert_eq!(registry.snapshot().counters["faultsim.cancelled_runs"], 1);
    }

    #[test]
    fn uncancelled_token_does_not_change_results() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(150, 10);
        let plain = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![16, 48]))
            .run(&inputs);
        let token = CancelToken::new();
        let watched = ParallelFaultSimulator::new(&n, &u)
            .with_options(
                SimOptions::new()
                    .with_schedule(StageSchedule::with_boundaries(vec![16, 48]))
                    .with_cancel(token.clone()),
            )
            .try_run(&inputs)
            .unwrap();
        assert_eq!(plain.detection_cycles(), watched.detection_cycles());
        assert!(!token.is_cancelled());
    }

    #[test]
    fn token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(!b.deadline_exceeded(), "no deadline was attached");
    }

    /// The workspace's tabulated 16-bit primitive polynomial
    /// (`x^16 + x^12 + x^3 + x + 1`), restated here so these tests pin
    /// concrete hardware rather than a table lookup.
    const SIG16: SignatureConfig = SignatureConfig { width: 16, poly: 0x1100B };

    /// Serial reference for signature mode: one scalar MISR per
    /// machine, fed the machine's output stream word by word.
    fn serial_signatures(
        n: &Netlist,
        u: &FaultUniverse,
        inputs: &[i64],
        cfg: SignatureConfig,
    ) -> (u64, Vec<u64>) {
        let absorb_outputs = |sim: &BitSlicedSim, lane: u32, m: &mut rtl::misr::Misr| {
            for out in n.output_ids() {
                m.absorb(sim.lane_value(out, lane));
            }
        };
        let mut good_misr = rtl::misr::Misr::with_polynomial(cfg.width, cfg.poly).unwrap();
        let mut good_sim = BitSlicedSim::new(n);
        for &x in inputs {
            good_sim.step(x);
            absorb_outputs(&good_sim, 0, &mut good_misr);
        }
        let per_fault = u
            .ids()
            .map(|fid| {
                let site = u.site(fid);
                let mut sim = BitSlicedSim::new(n);
                sim.set_faults(
                    site.node,
                    vec![CellFault { cell: site.cell, fault: site.representative, lanes: 2 }],
                );
                let mut m = rtl::misr::Misr::with_polynomial(cfg.width, cfg.poly).unwrap();
                for &x in inputs {
                    sim.step(x);
                    absorb_outputs(&sim, 1, &mut m);
                }
                m.signature()
            })
            .collect();
        (good_misr.signature(), per_fault)
    }

    #[test]
    fn signature_mode_keeps_detection_cycles_bit_identical() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(150, 10);
        let compare = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![16, 48]))
            .run(&inputs);
        let signature = ParallelFaultSimulator::new(&n, &u)
            .with_options(
                SimOptions::new()
                    .with_schedule(StageSchedule::with_boundaries(vec![16, 48]))
                    .with_signature(SIG16),
            )
            .run(&inputs);
        assert_eq!(compare.detection_cycles(), signature.detection_cycles());
        assert!(compare.signatures().is_none());
        assert!(compare.aliased().is_empty());
        assert!(signature.signatures().is_some());
    }

    #[test]
    fn signature_mode_matches_serial_scalar_misrs() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(100, 10);
        let (good, per_fault) = serial_signatures(&n, &u, &inputs, SIG16);
        let result = ParallelFaultSimulator::new(&n, &u)
            .with_options(
                SimOptions::new()
                    .with_schedule(StageSchedule::with_boundaries(vec![16, 48]))
                    .with_signature(SIG16),
            )
            .run(&inputs);
        let sigs = result.signatures().expect("signature mode reports signatures");
        assert_eq!(sigs.good, good);
        assert_eq!(sigs.per_fault, per_fault);
        assert_eq!(result.good_signature(), Some(good));
    }

    #[test]
    fn signature_verdicts_invariant_across_threads_and_schedules() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(150, 10);
        let reference = ParallelFaultSimulator::new(&n, &u)
            .with_options(
                SimOptions::new()
                    .with_schedule(StageSchedule::with_boundaries(vec![]))
                    .with_threads(1)
                    .with_signature(SIG16),
            )
            .run(&inputs);
        let ref_sigs = reference.signatures().unwrap();
        for (threads, boundaries) in
            [(2usize, vec![16u32, 48]), (3, vec![1, 2, 3]), (8, vec![64]), (4, vec![8, 16, 32, 64])]
        {
            let result = ParallelFaultSimulator::new(&n, &u)
                .with_options(
                    SimOptions::new()
                        .with_schedule(StageSchedule::with_boundaries(boundaries.clone()))
                        .with_threads(threads)
                        .with_signature(SIG16),
                )
                .run(&inputs);
            assert_eq!(
                result.detection_cycles(),
                reference.detection_cycles(),
                "threads={threads} boundaries={boundaries:?}"
            );
            assert_eq!(
                result.signatures().unwrap(),
                ref_sigs,
                "threads={threads} boundaries={boundaries:?}"
            );
        }
    }

    #[test]
    fn one_bit_misr_aliases_and_is_reported_not_dropped() {
        // A 1-bit MISR (poly x + 1: state ^= msb ^ word) aliases with
        // probability ~1/2 per detected fault — the degenerate register
        // makes escapes certain to appear, and every one of them must
        // be reported as compare-detected-but-aliased.
        let n = filterish(12);
        let u = universe(&n);
        let inputs = pseudo_inputs(256, 12);
        let result = ParallelFaultSimulator::new(&n, &u)
            .with_options(SimOptions::new().with_signature(SignatureConfig { width: 1, poly: 1 }))
            .run(&inputs);
        let aliased = result.aliased();
        assert!(!aliased.is_empty(), "a 1-bit signature cannot separate hundreds of faults");
        for fid in &aliased {
            assert!(
                result.detection_cycles()[fid.index()].is_some(),
                "aliasing is only meaningful for compare-detected faults"
            );
        }
        assert_eq!(result.signature_detected_count(), result.detected_count() - aliased.len());
    }

    #[test]
    fn sixteen_bit_misr_has_no_aliasing_on_this_circuit() {
        let n = filterish(12);
        let u = universe(&n);
        let inputs = pseudo_inputs(256, 12);
        let result = ParallelFaultSimulator::new(&n, &u)
            .with_options(SimOptions::new().with_signature(SIG16))
            .run(&inputs);
        assert_eq!(result.aliased(), Vec::new());
        assert_eq!(result.signature_detected_count(), result.detected_count());
    }

    #[test]
    fn signature_metrics_count_aliased_faults() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(100, 10);
        let registry = Arc::new(Registry::new());
        let result = ParallelFaultSimulator::new(&n, &u)
            .with_options(
                SimOptions::new()
                    .with_metrics(Arc::clone(&registry))
                    .with_signature(SignatureConfig { width: 1, poly: 1 }),
            )
            .run(&inputs);
        let s = registry.snapshot();
        assert_eq!(s.counters["faultsim.faults_aliased"], result.aliased().len() as u64);
    }

    #[test]
    fn empty_signature_run_reports_reset_signatures() {
        let n = filterish(10);
        let u = universe(&n);
        let result = ParallelFaultSimulator::new(&n, &u)
            .with_options(SimOptions::new().with_signature(SIG16))
            .run(&[]);
        let sigs = result.signatures().unwrap();
        assert_eq!(sigs.good, 0);
        assert_eq!(sigs.per_fault, vec![0; u.len()]);
        assert!(result.aliased().is_empty(), "undetected faults never count as aliased");
    }

    #[test]
    fn options_resolve_thread_count() {
        assert_eq!(SimOptions::new().with_threads(3).effective_threads(), 3);
        assert!(SimOptions::new().effective_threads() >= 1);
        let opts = SimOptions::new()
            .with_schedule(StageSchedule::with_boundaries(vec![8]))
            .with_threads(2);
        assert_eq!(opts.threads(), 2);
        assert_eq!(opts.schedule(), &StageSchedule::with_boundaries(vec![8]));
    }

    #[test]
    fn engine_names_round_trip_and_kernel_is_the_default() {
        assert_eq!(SimOptions::new().engine(), SimEngine::Kernel);
        for e in [SimEngine::Kernel, SimEngine::Walker] {
            assert_eq!(SimEngine::parse(e.as_str()), Some(e));
        }
        assert_eq!(SimEngine::parse("graph"), None);
        assert_eq!(SimOptions::new().with_engine(SimEngine::Walker).engine(), SimEngine::Walker);
    }

    #[test]
    fn engines_agree_in_compare_mode() {
        let n = filterish(12);
        let u = universe(&n);
        let inputs = pseudo_inputs(192, 12);
        let run = |engine| {
            ParallelFaultSimulator::new(&n, &u)
                .with_options(
                    SimOptions::new()
                        .with_engine(engine)
                        .with_schedule(StageSchedule::with_boundaries(vec![64, 128]))
                        .with_threads(1),
                )
                .run(&inputs)
        };
        let kernel = run(SimEngine::Kernel);
        let walker = run(SimEngine::Walker);
        assert_eq!(kernel.detection_cycle, walker.detection_cycle);
        assert_eq!(kernel.total_cycles, walker.total_cycles);
    }

    #[test]
    fn engines_agree_in_signature_mode() {
        let n = filterish(12);
        let u = universe(&n);
        let inputs = pseudo_inputs(192, 12);
        let run = |engine| {
            ParallelFaultSimulator::new(&n, &u)
                .with_options(
                    SimOptions::new()
                        .with_engine(engine)
                        .with_schedule(StageSchedule::with_boundaries(vec![96]))
                        .with_threads(1)
                        .with_signature(SIG16),
                )
                .run(&inputs)
        };
        let kernel = run(SimEngine::Kernel);
        let walker = run(SimEngine::Walker);
        assert_eq!(kernel.detection_cycle, walker.detection_cycle);
        assert_eq!(kernel.signatures(), walker.signatures());
        assert_eq!(kernel.aliased(), walker.aliased());
    }
}
