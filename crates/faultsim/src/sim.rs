use crate::fault::{FaultId, FaultUniverse};
use rtl::sim::{BitSlicedSim, CellFault};
use rtl::Netlist;
use std::collections::HashMap;

/// Staged fault-dropping schedule: simulation restarts lane packing at
/// each boundary, carrying every surviving faulty machine's register
/// state across. Early stages are short so the bulk of (easy) faults is
/// dropped after few cycles; only the hard tail pays for the full test
/// length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSchedule {
    boundaries: Vec<u32>,
}

impl StageSchedule {
    /// The default schedule: repack at cycles 64, 256 and 1024.
    pub fn new() -> Self {
        StageSchedule { boundaries: vec![64, 256, 1024] }
    }

    /// A custom schedule from ascending repack cycles.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not strictly ascending.
    pub fn with_boundaries(boundaries: Vec<u32>) -> Self {
        assert!(boundaries.windows(2).all(|w| w[0] < w[1]), "boundaries must ascend");
        StageSchedule { boundaries }
    }

    /// Stage extents `(start, end)` for a test of `total` cycles.
    fn stages(&self, total: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut start = 0u32;
        for &b in self.boundaries.iter().filter(|&&b| b < total) {
            out.push((start, b));
            start = b;
        }
        if start < total {
            out.push((start, total));
        }
        out
    }
}

impl Default for StageSchedule {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a fault-simulation run.
#[derive(Debug, Clone)]
pub struct FaultSimResult {
    detection_cycle: Vec<Option<u32>>,
    total_cycles: u32,
}

impl FaultSimResult {
    /// First cycle (0-based) at which each fault was detected, `None`
    /// for missed faults. Indexed by [`FaultId::index`].
    pub fn detection_cycles(&self) -> &[Option<u32>] {
        &self.detection_cycle
    }

    /// Length of the applied test sequence.
    pub fn total_cycles(&self) -> u32 {
        self.total_cycles
    }

    /// Number of detected faults.
    pub fn detected_count(&self) -> usize {
        self.detection_cycle.iter().filter(|d| d.is_some()).count()
    }

    /// Ids of faults never detected.
    pub fn missed(&self) -> Vec<FaultId> {
        self.detection_cycle
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| FaultId(i as u32))
            .collect()
    }

    /// Number of faults still undetected after `cycle` vectors.
    pub fn missed_after(&self, cycle: u32) -> usize {
        self.detection_cycle.iter().filter(|d| d.map_or(true, |c| c >= cycle)).count()
    }

    /// Fault coverage (fraction detected) after `cycle` vectors.
    pub fn coverage_after(&self, cycle: u32) -> f64 {
        if self.detection_cycle.is_empty() {
            return 1.0;
        }
        1.0 - self.missed_after(cycle) as f64 / self.detection_cycle.len() as f64
    }

    /// Coverage curve sampled at the given cycle counts.
    pub fn curve(&self, cycles: &[u32]) -> Vec<(u32, f64)> {
        cycles.iter().map(|&c| (c, self.coverage_after(c))).collect()
    }
}

/// The staged 64-lane parallel fault simulator.
pub struct ParallelFaultSimulator<'a> {
    netlist: &'a Netlist,
    universe: &'a FaultUniverse,
    schedule: StageSchedule,
}

impl<'a> ParallelFaultSimulator<'a> {
    /// Creates a simulator with the default stage schedule.
    pub fn new(netlist: &'a Netlist, universe: &'a FaultUniverse) -> Self {
        ParallelFaultSimulator { netlist, universe, schedule: StageSchedule::new() }
    }

    /// Overrides the stage schedule.
    pub fn with_schedule(mut self, schedule: StageSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Runs the complete test sequence (one raw input word per cycle,
    /// already aligned to the netlist's input width) against every fault
    /// in the universe.
    ///
    /// Detection is a direct compare of all outputs against the good
    /// machine (no compaction aliasing). Faulty-machine register state
    /// is carried exactly across stage repacks, so results are identical
    /// to simulating each fault individually from cycle 0.
    pub fn run(&self, inputs: &[i64]) -> FaultSimResult {
        let total = inputs.len() as u32;
        let mut detection: Vec<Option<u32>> = vec![None; self.universe.len()];
        if self.universe.is_empty() || total == 0 {
            return FaultSimResult { detection_cycle: detection, total_cycles: total };
        }

        // Good-machine register state at the start of the current stage.
        let mut good_sim = BitSlicedSim::new(self.netlist);
        let mut good_state = good_sim.register_state_lane(0);

        // Surviving faults and their machine states at stage start.
        let mut active: Vec<FaultId> = self.universe.ids().collect();
        let mut states: HashMap<FaultId, Vec<u64>> = HashMap::new();

        for (start, end) in self.schedule.stages(total) {
            if active.is_empty() {
                break;
            }
            let mut survivors: Vec<FaultId> = Vec::new();
            let mut new_states: HashMap<FaultId, Vec<u64>> = HashMap::new();

            for group in active.chunks(63) {
                let mut sim = BitSlicedSim::new(self.netlist);
                // All lanes start from the good state, then faulty lanes
                // get their own diverged state.
                for lane in 0..64 {
                    sim.set_register_state_lane(lane, &good_state);
                }
                for (slot, &fid) in group.iter().enumerate() {
                    let lane = slot as u32 + 1;
                    if let Some(s) = states.get(&fid) {
                        sim.set_register_state_lane(lane, s);
                    }
                }
                // Inject the group's faults, batched per node.
                let mut per_node: HashMap<rtl::NodeId, Vec<CellFault>> = HashMap::new();
                for (slot, &fid) in group.iter().enumerate() {
                    let site = self.universe.site(fid);
                    per_node.entry(site.node).or_default().push(CellFault {
                        cell: site.cell,
                        fault: site.representative,
                        lanes: 1u64 << (slot + 1),
                    });
                }
                for (node, faults) in per_node {
                    sim.set_faults(node, faults);
                }

                let mut undetected_mask: u64 = 0;
                for slot in 0..group.len() {
                    undetected_mask |= 1u64 << (slot + 1);
                }
                for cycle in start..end {
                    sim.step(inputs[cycle as usize]);
                    let diff = sim.output_diff_lanes(0) & undetected_mask;
                    if diff != 0 {
                        let mut d = diff;
                        while d != 0 {
                            let lane = d.trailing_zeros();
                            d &= d - 1;
                            let fid = group[(lane - 1) as usize];
                            detection[fid.index()] = Some(cycle);
                        }
                        undetected_mask &= !diff;
                        if undetected_mask == 0 {
                            break;
                        }
                    }
                }
                // Snapshot survivors' states for the next stage.
                let mut m = undetected_mask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    let fid = group[(lane - 1) as usize];
                    survivors.push(fid);
                    new_states.insert(fid, sim.register_state_lane(lane));
                }
            }

            // Advance the good machine to the stage end.
            for cycle in start..end {
                good_sim.step(inputs[cycle as usize]);
            }
            good_state = good_sim.register_state_lane(0);

            survivors.sort();
            active = survivors;
            states = new_states;
        }

        FaultSimResult { detection_cycle: detection, total_cycles: total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultUniverse;
    use rtl::range::{aligned_input_range, RangeAnalysis};
    use rtl::sim::CellFault;
    use rtl::{Netlist, NetlistBuilder};

    fn filterish(width: u32) -> Netlist {
        // Three-tap FIR-ish structure with shifts and a subtractor.
        let mut b = NetlistBuilder::new(width).unwrap();
        let x = b.input("x");
        let t0 = b.shift_right(x, 1);
        let d1 = b.register(x);
        let t1 = b.shift_right(d1, 2);
        let a1 = b.add_labeled(t0, t1, "a1");
        let d2 = b.register(d1);
        let t2 = b.shift_right(d2, 3);
        let a2 = b.sub_labeled(a1, t2, "a2");
        b.output(a2, "y");
        b.finish().unwrap()
    }

    fn universe(n: &Netlist) -> FaultUniverse {
        let r = RangeAnalysis::analyze(n, aligned_input_range(n.width(), n.width()));
        FaultUniverse::enumerate(n, &r)
    }

    fn pseudo_inputs(n: usize, width: u32) -> Vec<i64> {
        let mut state = 0x123456789ABCDEFu64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                fixedpoint::QFormat::new(width, width - 1)
                    .unwrap()
                    .sign_extend(state >> (64 - width))
            })
            .collect()
    }

    /// Serial (one-fault-at-a-time) reference implementation.
    fn serial_reference(n: &Netlist, u: &FaultUniverse, inputs: &[i64]) -> Vec<Option<u32>> {
        u.ids()
            .map(|fid| {
                let site = u.site(fid);
                let mut sim = BitSlicedSim::new(n);
                sim.set_faults(
                    site.node,
                    vec![CellFault { cell: site.cell, fault: site.representative, lanes: 2 }],
                );
                for (cycle, &x) in inputs.iter().enumerate() {
                    sim.step(x);
                    if sim.output_diff_lanes(0) & 2 != 0 {
                        return Some(cycle as u32);
                    }
                }
                None
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(100, 10);
        let parallel = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![16, 48]))
            .run(&inputs);
        let serial = serial_reference(&n, &u, &inputs);
        assert_eq!(parallel.detection_cycles(), &serial[..]);
    }

    #[test]
    fn repacking_preserves_detection_times() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(120, 10);
        let one_stage = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![]))
            .run(&inputs);
        let many_stages = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![8, 16, 32, 64]))
            .run(&inputs);
        assert_eq!(one_stage.detection_cycles(), many_stages.detection_cycles());
    }

    #[test]
    fn most_faults_detected_by_random_patterns() {
        let n = filterish(12);
        let u = universe(&n);
        let inputs = pseudo_inputs(512, 12);
        let result = ParallelFaultSimulator::new(&n, &u).run(&inputs);
        let coverage = result.coverage_after(512);
        assert!(coverage > 0.9, "coverage {coverage}");
    }

    #[test]
    fn coverage_is_monotone_in_test_length() {
        let n = filterish(12);
        let u = universe(&n);
        let inputs = pseudo_inputs(256, 12);
        let result = ParallelFaultSimulator::new(&n, &u).run(&inputs);
        let mut prev = 0.0;
        for c in [1u32, 4, 16, 64, 256] {
            let cov = result.coverage_after(c);
            assert!(cov >= prev);
            prev = cov;
        }
    }

    #[test]
    fn empty_inputs_detect_nothing() {
        let n = filterish(10);
        let u = universe(&n);
        let result = ParallelFaultSimulator::new(&n, &u).run(&[]);
        assert_eq!(result.detected_count(), 0);
        assert_eq!(result.missed().len(), u.len());
    }

    #[test]
    fn missed_after_interpolates_curve() {
        let n = filterish(10);
        let u = universe(&n);
        let inputs = pseudo_inputs(64, 10);
        let result = ParallelFaultSimulator::new(&n, &u).run(&inputs);
        assert_eq!(result.missed_after(0), u.len());
        assert_eq!(result.missed_after(64), result.missed().len());
        let curve = result.curve(&[0, 16, 64]);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].1, 0.0);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn bad_schedule_panics() {
        StageSchedule::with_boundaries(vec![64, 64]);
    }
}
