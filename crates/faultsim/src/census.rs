//! Activation census: how often does normal operation actually assert
//! the cell-level tests that detect each fault?
//!
//! The paper distinguishes *near-redundant* faults — activated only by
//! inputs "that would never occur under normal operating conditions" —
//! from merely *difficult* ones, and proposes excluding the former from
//! the fault universe when input statistics are known. This module
//! measures exactly that: drive the fault-free machine with a
//! representative operating signal and count, per fault, the cycles in
//! which the faulty cell sees one of its detecting input combinations.

use crate::fault::{FaultId, FaultUniverse};
use rtl::sim::BitSlicedSim;
use rtl::{Netlist, NodeId, NodeKind};
use std::collections::BTreeMap;

/// Per-fault activation counts over a stimulus.
#[derive(Debug, Clone)]
pub struct ActivationCensus {
    counts: Vec<u64>,
    cycles: u64,
}

impl ActivationCensus {
    /// Cycles in which fault `id`'s cell saw a detecting combination.
    pub fn count(&self, id: FaultId) -> u64 {
        self.counts[id.index()]
    }

    /// Stimulus length.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Empirical per-vector activation probability of a fault.
    pub fn probability(&self, id: FaultId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.count(id) as f64 / self.cycles as f64
        }
    }

    /// Ids (from `ids`) never activated by the stimulus — the
    /// near-redundant candidates at this stimulus length's resolution.
    pub fn never_activated<'a>(&'a self, ids: &'a [FaultId]) -> impl Iterator<Item = FaultId> + 'a {
        ids.iter().copied().filter(move |&id| self.count(id) == 0)
    }
}

/// Runs the fault-free machine over `inputs` and counts, for every
/// fault in `ids`, the cycles in which the fault's cell input
/// combination is one of its detecting tests.
pub fn activation_census(
    netlist: &Netlist,
    universe: &FaultUniverse,
    ids: &[FaultId],
    inputs: &[i64],
) -> ActivationCensus {
    // Group the watched faults per (node, cell) to compute each cell's
    // combo once per cycle.
    let mut watch: BTreeMap<NodeId, Vec<(u32, u8, FaultId)>> = BTreeMap::new();
    for &id in ids {
        let site = universe.site(id);
        watch.entry(site.node).or_default().push((site.cell, site.detecting_tests, id));
    }

    let mut counts = vec![0u64; universe.len()];
    let mut sim = BitSlicedSim::new(netlist);
    let q = netlist.format();
    for &x in inputs {
        sim.step(x);
        for (&node, sites) in &watch {
            // Carry-save stages: the cell combo is the three operand
            // bits directly.
            if let NodeKind::CsaSum { a, b, c } = netlist.node(node).kind {
                let a_bits = q.to_bits(sim.lane_value(a, 0));
                let b_bits = q.to_bits(sim.lane_value(b, 0));
                let c_bits = q.to_bits(sim.lane_value(c, 0));
                for &(cell, tests, id) in sites {
                    let combo = ((a_bits >> cell) & 1) << 2
                        | ((b_bits >> cell) & 1) << 1
                        | ((c_bits >> cell) & 1);
                    if tests & (1u8 << combo) != 0 {
                        counts[id.index()] += 1;
                    }
                }
                continue;
            }
            let (a, b, is_sub) = match netlist.node(node).kind {
                NodeKind::Add { a, b } => (a, b, false),
                NodeKind::Sub { a, b } => (a, b, true),
                _ => continue,
            };
            let a_bits = q.to_bits(sim.lane_value(a, 0));
            let b_raw = q.to_bits(sim.lane_value(b, 0));
            let b_bits = if is_sub { !b_raw } else { b_raw };
            // Ripple once to recover each cell's carry-in.
            let mut carry: u64 = u64::from(is_sub);
            let mut combos = [0u8; 64];
            for (cell, combo) in combos.iter_mut().enumerate().take(netlist.width() as usize) {
                let av = (a_bits >> cell) & 1;
                let bv = (b_bits >> cell) & 1;
                *combo = ((av << 2) | (bv << 1) | carry) as u8;
                let x1 = av ^ bv;
                carry = (av & bv) | (x1 & carry);
            }
            for &(cell, tests, id) in sites {
                if tests & (1 << combos[cell as usize]) != 0 {
                    counts[id.index()] += 1;
                }
            }
        }
    }
    ActivationCensus { counts, cycles: inputs.len() as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ParallelFaultSimulator, StageSchedule};
    use rtl::range::{aligned_input_range, RangeAnalysis};
    use rtl::NetlistBuilder;

    fn setup() -> (rtl::Netlist, FaultUniverse) {
        let mut b = NetlistBuilder::new(10).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let s = b.shift_right(d, 2);
        let y = b.add_labeled(x, s, "acc");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let r = RangeAnalysis::analyze(&n, aligned_input_range(10, 10));
        let u = FaultUniverse::enumerate(&n, &r);
        (n, u)
    }

    fn noise(n: usize) -> Vec<i64> {
        let mut state = 0xBEEFu64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                fixedpoint::QFormat::new(10, 9).unwrap().sign_extend(state >> 54)
            })
            .collect()
    }

    #[test]
    fn detected_faults_are_activated() {
        // A fault detected by simulation must have been activated at
        // least once by the same stimulus.
        let (n, u) = setup();
        let inputs = noise(200);
        let ids: Vec<FaultId> = u.ids().collect();
        let census = activation_census(&n, &u, &ids, &inputs);
        let result = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![]))
            .run(&inputs);
        for id in u.ids() {
            if result.detection_cycles()[id.index()].is_some() {
                assert!(census.count(id) > 0, "detected but never activated: {}", u.site(id));
            }
        }
    }

    #[test]
    fn zero_stimulus_activates_nothing_much() {
        let (n, u) = setup();
        let ids: Vec<FaultId> = u.ids().collect();
        let census = activation_census(&n, &u, &ids, &vec![0i64; 32]);
        // With an all-zero input every adder cell sits at combo 000, so
        // only faults detectable by T0 are "activated".
        for id in u.ids() {
            let site = u.site(id);
            if site.detecting_tests & 1 == 0 {
                assert_eq!(census.count(id), 0, "{}", site);
            }
        }
        assert_eq!(census.cycles(), 32);
    }

    #[test]
    fn probability_and_never_activated_are_consistent() {
        let (n, u) = setup();
        let inputs = noise(100);
        let ids: Vec<FaultId> = u.ids().collect();
        let census = activation_census(&n, &u, &ids, &inputs);
        let never: Vec<FaultId> = census.never_activated(&ids).collect();
        for id in &ids {
            if never.contains(id) {
                assert_eq!(census.probability(*id), 0.0);
            } else {
                assert!(census.probability(*id) > 0.0);
            }
        }
    }
}
