//! Missed-fault reporting: locate the hard faults by node and cell
//! position, as the paper's Fig. 3 does ("three bits down from the MSB
//! of tap 20").

use crate::fault::{FaultId, FaultUniverse};
use crate::sim::FaultSimResult;
use rtl::fulladder::Line;
use rtl::range::RangeAnalysis;
use rtl::{Netlist, NodeId};
use std::collections::BTreeMap;

/// One undetected fault with its full site provenance — enough for a
/// downstream tool (the `atpg` top-off flow, `bistctl result
/// --residues`) to reason about the fault without re-deriving the
/// universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidueFault {
    /// Id within the run's fault universe.
    pub id: FaultId,
    /// The adder/subtractor node hosting the fault.
    pub node: NodeId,
    /// The node's label (e.g. `tap3.acc`).
    pub label: String,
    /// Cell (bit) position within the adder, `0` = LSB.
    pub cell: u32,
    /// The faulty full-adder line of the representative fault.
    pub line: Line,
    /// Polarity: `true` for stuck-at-1, `false` for stuck-at-0.
    pub stuck_one: bool,
}

/// The run's undetected residue with per-fault provenance, in
/// ascending fault-id order.
pub fn residue(
    netlist: &Netlist,
    universe: &FaultUniverse,
    result: &FaultSimResult,
) -> Vec<ResidueFault> {
    result
        .missed()
        .into_iter()
        .map(|id| {
            let site = universe.site(id);
            ResidueFault {
                id,
                node: site.node,
                label: netlist.node(site.node).label.clone(),
                cell: site.cell,
                line: site.representative.line,
                stuck_one: site.representative.stuck_one,
            }
        })
        .collect()
}

/// Summary of the missed faults at one adder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMissSummary {
    /// The adder/subtractor node.
    pub node: NodeId,
    /// The node's label (e.g. `tap20.acc`).
    pub label: String,
    /// Missed fault classes at this node.
    pub missed: Vec<FaultId>,
    /// Highest active cell of the node (the effective MSB position).
    pub msb_cell: u32,
    /// For each missed fault, how many bits below the effective MSB it
    /// sits (0 = the MSB cell itself).
    pub bits_below_msb: Vec<u32>,
}

/// Groups a run's missed faults by node, ordered by descending miss
/// count.
pub fn missed_by_node(
    netlist: &Netlist,
    universe: &FaultUniverse,
    ranges: &RangeAnalysis,
    result: &FaultSimResult,
) -> Vec<NodeMissSummary> {
    let mut per_node: BTreeMap<NodeId, Vec<FaultId>> = BTreeMap::new();
    for fid in result.missed() {
        per_node.entry(universe.site(fid).node).or_default().push(fid);
    }
    let mut out: Vec<NodeMissSummary> = per_node
        .into_iter()
        .map(|(node, missed)| {
            let msb_cell = ranges
                .active_span(netlist, node)
                .map(|(_, msb)| msb)
                .unwrap_or(netlist.width() - 1);
            let bits_below_msb =
                missed.iter().map(|&f| msb_cell.saturating_sub(universe.site(f).cell)).collect();
            NodeMissSummary {
                node,
                label: netlist.node(node).label.clone(),
                missed,
                msb_cell,
                bits_below_msb,
            }
        })
        .collect();
    out.sort_by(|a, b| b.missed.len().cmp(&a.missed.len()).then(a.node.cmp(&b.node)));
    out
}

/// Histogram of missed faults by distance below each adder's effective
/// MSB — the paper's observation that hard faults concentrate "in the
/// carry logic of the bits closest to the MSB".
pub fn missed_by_depth(
    netlist: &Netlist,
    universe: &FaultUniverse,
    ranges: &RangeAnalysis,
    result: &FaultSimResult,
) -> BTreeMap<u32, usize> {
    let mut hist: BTreeMap<u32, usize> = BTreeMap::new();
    for fid in result.missed() {
        let site = universe.site(fid);
        let msb =
            ranges.active_span(netlist, site.node).map(|(_, m)| m).unwrap_or(netlist.width() - 1);
        *hist.entry(msb.saturating_sub(site.cell)).or_insert(0) += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ParallelFaultSimulator, StageSchedule};
    use rtl::range::aligned_input_range;
    use rtl::NetlistBuilder;

    #[test]
    fn reports_group_missed_faults() {
        let mut b = NetlistBuilder::new(10).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let s = b.shift_right(d, 3);
        let y = b.add_labeled(x, s, "acc");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let r = RangeAnalysis::analyze(&n, aligned_input_range(10, 10));
        let u = crate::FaultUniverse::enumerate(&n, &r);
        // Tiny test: most faults missed, everything attributable.
        let inputs = vec![1i64, -1, 2, -2];
        let result = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![]))
            .run(&inputs);
        let by_node = missed_by_node(&n, &u, &r, &result);
        let total: usize = by_node.iter().map(|s| s.missed.len()).sum();
        assert_eq!(total, result.missed().len());
        for s in &by_node {
            assert_eq!(s.label, "acc");
            assert_eq!(s.missed.len(), s.bits_below_msb.len());
        }
        let by_depth = missed_by_depth(&n, &u, &r, &result);
        let total2: usize = by_depth.values().sum();
        assert_eq!(total2, result.missed().len());
    }

    /// Two adders, one starved of stimulus: summaries come back in
    /// descending miss-count order with node id as the tie-break.
    #[test]
    fn summaries_are_ordered_by_descending_miss_count() {
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let s = b.shift_right(x, 4);
        let a = b.add_labeled(x, x, "busy");
        let q = b.add_labeled(s, s, "starved");
        let y = b.add_labeled(a, q, "acc");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let r = RangeAnalysis::analyze(&n, aligned_input_range(8, 8));
        let u = crate::FaultUniverse::enumerate(&n, &r);
        // A couple of tiny values exercise the low cells of `busy`
        // while `starved` sees almost nothing.
        let inputs = vec![1i64, 2, 3, 1];
        let result = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![]))
            .run(&inputs);
        let by_node = missed_by_node(&n, &u, &r, &result);
        assert!(!by_node.is_empty());
        for pair in by_node.windows(2) {
            let (hi, lo) = (&pair[0], &pair[1]);
            assert!(
                hi.missed.len() > lo.missed.len()
                    || (hi.missed.len() == lo.missed.len() && hi.node < lo.node),
                "{}:{} before {}:{}",
                hi.label,
                hi.missed.len(),
                lo.label,
                lo.missed.len()
            );
        }
        // Every miss is attributed to the node its site names, at the
        // depth its cell implies.
        for s in &by_node {
            for (&fid, &depth) in s.missed.iter().zip(&s.bits_below_msb) {
                assert_eq!(u.site(fid).node, s.node);
                assert_eq!(depth, s.msb_cell.saturating_sub(u.site(fid).cell));
            }
        }
    }

    /// The depth histogram is exactly the node summaries' depth column,
    /// aggregated.
    #[test]
    fn depth_histogram_matches_node_summaries() {
        let mut b = NetlistBuilder::new(9).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let y = b.add_labeled(x, d, "acc");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let r = RangeAnalysis::analyze(&n, aligned_input_range(9, 9));
        let u = crate::FaultUniverse::enumerate(&n, &r);
        let inputs = vec![3i64, -5, 7, 0, 1];
        let result = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![]))
            .run(&inputs);
        let by_node = missed_by_node(&n, &u, &r, &result);
        let by_depth = missed_by_depth(&n, &u, &r, &result);
        let mut expected: BTreeMap<u32, usize> = BTreeMap::new();
        for s in &by_node {
            for &depth in &s.bits_below_msb {
                *expected.entry(depth).or_insert(0) += 1;
            }
        }
        assert_eq!(by_depth, expected);
    }

    /// The residue report carries exactly the missed ids, each with
    /// the provenance of its universe site — and a subset universe
    /// built from it preserves those sites position-for-position.
    #[test]
    fn residue_carries_site_provenance() {
        let mut b = NetlistBuilder::new(10).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let s = b.shift_right(d, 3);
        let y = b.add_labeled(x, s, "acc");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let r = RangeAnalysis::analyze(&n, aligned_input_range(10, 10));
        let u = crate::FaultUniverse::enumerate(&n, &r);
        let inputs = vec![1i64, -1, 2, -2];
        let result = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![]))
            .run(&inputs);
        let residue = residue(&n, &u, &result);
        let missed = result.missed();
        assert!(!residue.is_empty(), "tiny stimulus should leave a residue");
        assert_eq!(residue.len(), missed.len());
        for (rf, &id) in residue.iter().zip(&missed) {
            let site = u.site(id);
            assert_eq!(rf.id, id);
            assert_eq!(rf.node, site.node);
            assert_eq!(rf.label, "acc");
            assert_eq!(rf.cell, site.cell);
            assert_eq!(rf.line, site.representative.line);
            assert_eq!(rf.stuck_one, site.representative.stuck_one);
        }
        let sub = u.subset(&missed);
        assert_eq!(sub.len(), missed.len());
        for (i, &id) in missed.iter().enumerate() {
            assert_eq!(sub.site(crate::FaultId(i as u32)), u.site(id));
        }
        assert_eq!(
            sub.uncollapsed_len(),
            missed.iter().map(|&f| u.site(f).members as usize).sum::<usize>()
        );
    }

    /// A fully-detecting run produces empty reports, not phantom rows.
    #[test]
    fn clean_run_yields_empty_reports() {
        let mut b = NetlistBuilder::new(4).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let y = b.add_labeled(x, d, "acc");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let r = RangeAnalysis::analyze(&n, aligned_input_range(4, 4));
        let u = crate::FaultUniverse::enumerate(&n, &r);
        // Every ordered 4-bit operand pair reaches the adder via the
        // register delay, detecting every enumerated fault.
        let mut inputs = Vec::new();
        for a in -8i64..8 {
            for b in -8i64..8 {
                inputs.push(a);
                inputs.push(b);
            }
        }
        let result = ParallelFaultSimulator::new(&n, &u)
            .with_schedule(StageSchedule::with_boundaries(vec![]))
            .run(&inputs);
        assert!(result.missed().is_empty(), "exhaustive stimulus missed faults");
        assert!(missed_by_node(&n, &u, &r, &result).is_empty());
        assert!(missed_by_depth(&n, &u, &r, &result).is_empty());
    }
}
