//! Flat levelized structure-of-arrays simulation kernel.
//!
//! [`rtl::sim::BitSlicedSim`] walks the netlist graph every cycle:
//! per-node enum dispatch, plane copies for wiring nodes (shifts,
//! outputs, sign extension, register reads), and — once any cell of a
//! node is faulted — a slow path that re-scans the node's fault list
//! and calls the interpretive gate model for *every* bit of that node.
//! This module compiles the same netlist **once** into a [`Tape`]: a
//! topologically-ordered straight-line program over a flat array of
//! u64 bit-plane *slots*, with
//!
//! * **one fused op per full-adder cell** (sum and carry produced
//!   together from three source slots — no per-gate dispatch in the
//!   hot loop, which runs over uniform-kind segments),
//! * **wiring compiled away**: shifts, sign extension, `SetLsb` upper
//!   bits, register reads and constant bits are pure *slot aliases*
//!   resolved at compile time — zero instructions at run time,
//! * **fault injection as tape patches** ([`KernelSim::set_faults`]):
//!   a patched cell is executed through the exact interpretive gate
//!   model ([`rtl::fulladder::eval_word`]) while every other op of the
//!   tape — including the rest of the faulted adder — stays on the
//!   branch-free fast path, and
//! * **optional multi-word lanes** ([`KernelSim::with_words`]): `N`
//!   independent 64-pattern words per pass share one instruction
//!   stream.
//!
//! # Slot-numbering contract
//!
//! Slot `0` is constant all-zeros and slot `1` constant all-ones;
//! neither is ever a destination. Every other physical slot is written
//! by exactly one producer per cycle (input broadcast, one tape op, or
//! the register latch phase) — the tape is in SSA form — and every op
//! reads only slots produced earlier in the tape, by the latch phase
//! of the previous cycle, or by the input broadcast. Register slots
//! double as the architectural state: they hold the *previous* cycle's
//! latched value throughout combinational evaluation and are updated
//! in a two-phase gather/commit latch, so chained registers observe
//! pre-latch values exactly like hardware (and like the walker).
//!
//! # Bit-identity with the walker
//!
//! Each compiled construct mirrors one arm of the walker's evaluator:
//! fused `Full`/`FullN` ops are its ripple-carry fast path, `SumOnly`
//! its trimmed MSB cell, aliases its wiring copies, and patches its
//! faulted slow path (same [`rtl::fulladder::eval_word`] lane masks,
//! same per-cell carry chaining). [`KernelSim`] therefore produces the
//! same output planes, register snapshots, detection masks and MISR
//! foldings bit-for-bit — the differential tests in this crate and the
//! `kernel` experiments cell hold the two engines equal on every
//! built-in design.
//!
//! Determinism: compilation and execution are pure functions of the
//! netlist, the input words and the injected faults — no hashing
//! iteration order, clocks or thread scheduling can reach the result.

use rtl::fulladder::{eval_word, FaFault};
use rtl::misr::MisrBank;
use rtl::sim::CellFault;
use rtl::{Netlist, NodeId, NodeKind};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Sentinel for "no slot" (an op without a carry destination).
const NO_SLOT: u32 = u32::MAX;

/// The operation kinds a tape is made of. A full-adder cell is one
/// fused op (not five gates); wiring is compiled into slot aliases and
/// emits no op at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// Full-adder cell: `sum = a^b^c`, `cout = maj(a,b,c)`.
    Full,
    /// Full-adder cell of a subtractor: `b` is complemented on read.
    FullN,
    /// Carry-less sum cell (trimmed MSB, or a carry-save sum bit):
    /// `sum = a^b^c`.
    SumOnly,
    /// Carry-less sum cell of a subtractor.
    SumOnlyN,
    /// Carry-save carry bit: `dst = maj(a,b,c)`. Emitted at the carry
    /// node's own topological position (its cells share the paired sum
    /// node's gate network, so its patches come from the sum node's
    /// fault list).
    Carry,
    /// Bitwise complement: `dst = !a`.
    Not,
    /// Plane copy: `dst = a` (only used to gather output blocks).
    Copy,
}

impl OpKind {
    /// `true` when the op complements its `b` operand on read (the
    /// subtractor's `a + !b + 1` form).
    fn negates_b(self) -> bool {
        matches!(self, OpKind::FullN | OpKind::SumOnlyN)
    }

    /// Stable lowercase mnemonic used by [`Tape::dump`].
    fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Full => "full",
            OpKind::FullN => "fulln",
            OpKind::SumOnly => "sum",
            OpKind::SumOnlyN => "sumn",
            OpKind::Carry => "carry",
            OpKind::Not => "not",
            OpKind::Copy => "copy",
        }
    }
}

/// Where one arithmetic node's cells live on the tape: cells `0..=top`
/// occupy ops `base_op..=base_op+top`, in bit order. A carry-save sum
/// node additionally records its paired carry node's `Carry` ops
/// (`carry_base..carry_base+width-1`), which the same cell faults
/// patch — the two nodes share one gate network, exactly as in the
/// walker.
#[derive(Debug, Clone, Copy)]
struct ArithOps {
    base_op: u32,
    top: u32,
    carry_base: Option<u32>,
}

/// A compiled netlist: the straight-line op tape (structure-of-arrays:
/// one parallel array per field) plus the slot map and the metadata
/// the executor needs (input/output/register slot blocks, latch pairs,
/// per-cell op addresses for fault patching).
///
/// Compile once with [`Tape::compile`], then run any number of
/// [`KernelSim`] machines against it — the tape is immutable and
/// freely shared across threads.
#[derive(Debug)]
pub struct Tape {
    width: usize,
    slots: usize,
    /// Parallel op arrays, indexed by op: kind, sources `a`/`b`/`c`,
    /// sum destination, carry destination (`NO_SLOT` when carry-less).
    kind: Vec<OpKind>,
    a: Vec<u32>,
    b: Vec<u32>,
    c: Vec<u32>,
    dst: Vec<u32>,
    dst2: Vec<u32>,
    /// Maximal uniform-kind runs `(kind, start, end)` covering the
    /// tape in order; the hot loop executes these without per-op
    /// dispatch.
    segments: Vec<(OpKind, u32, u32)>,
    /// `(node index, base slot)` of each input's `width`-slot block.
    inputs: Vec<(u32, u32)>,
    /// Base slot of each output's contiguous `width`-slot block, in
    /// [`Netlist::output_ids`] order.
    outputs: Vec<u32>,
    /// Base slot of each register's state block, in
    /// [`Netlist::register_indices`] order.
    reg_bases: Vec<u32>,
    /// `(register slot, source slot)` latch pairs, register-major in
    /// [`Netlist::register_indices`] order, bit-minor.
    latches: Vec<(u32, u32)>,
    /// Per-arithmetic-node cell-to-op addressing for fault patches.
    arith: HashMap<u32, ArithOps>,
    /// Physical slot of every `(node, bit)` plane, aliasing resolved;
    /// indexed `node_index * width + bit`.
    slot_of: Vec<u32>,
}

impl Tape {
    /// Lowers a netlist into its op tape. One pass over
    /// [`Netlist::eval_order`] allocates slots, resolves every wiring
    /// alias and emits the fused cell ops in topological (levelized)
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the netlist's evaluation order is not topological
    /// over its combinational edges (the builder guarantees it is).
    pub fn compile(netlist: &Netlist) -> Tape {
        let w = netlist.width() as usize;
        let n = netlist.nodes().len();
        let zero = 0u32;
        let ones = 1u32;
        let mut slots: u32 = 2;
        let mut slot_of = vec![NO_SLOT; n * w];
        let mut inputs = Vec::new();

        // Stateful and source-free nodes first: their slots exist
        // before any combinational consumer regardless of eval order.
        for (i, node) in netlist.nodes().iter().enumerate() {
            match node.kind {
                NodeKind::Input => {
                    let base = slots;
                    slots += w as u32;
                    for bit in 0..w {
                        slot_of[i * w + bit] = base + bit as u32;
                    }
                    inputs.push((i as u32, base));
                }
                NodeKind::Const { raw } => {
                    for bit in 0..w {
                        slot_of[i * w + bit] =
                            if (raw as u64 >> bit) & 1 == 1 { ones } else { zero };
                    }
                }
                NodeKind::Register { .. } => {
                    let base = slots;
                    slots += w as u32;
                    for bit in 0..w {
                        slot_of[i * w + bit] = base + bit as u32;
                    }
                }
                _ => {}
            }
        }

        let mut kind: Vec<OpKind> = Vec::new();
        let mut a: Vec<u32> = Vec::new();
        let mut b: Vec<u32> = Vec::new();
        let mut c: Vec<u32> = Vec::new();
        let mut dst: Vec<u32> = Vec::new();
        let mut dst2: Vec<u32> = Vec::new();
        let mut arith: HashMap<u32, ArithOps> = HashMap::new();
        // Carry ops recorded at each CsaCarry node, keyed by the paired
        // sum node; merged into `arith` after the pass (either node may
        // appear first in the evaluation order — the sum is not an
        // operand of the carry).
        let mut csa_carry_ops: HashMap<u32, u32> = HashMap::new();

        let slot = |slot_of: &[u32], id: NodeId, bit: usize| slot_of[id.index() * w + bit];

        for &order_idx in netlist.eval_order() {
            let i = order_idx as usize;
            match netlist.nodes()[i].kind {
                NodeKind::Input | NodeKind::Const { .. } | NodeKind::Register { .. } => {}
                NodeKind::ShiftRight { src, amount } => {
                    for bit in 0..w {
                        let from = (bit + amount as usize).min(w - 1);
                        slot_of[i * w + bit] = slot(&slot_of, src, from);
                    }
                }
                NodeKind::SetLsb { src } => {
                    slot_of[i * w] = ones;
                    for bit in 1..w {
                        slot_of[i * w + bit] = slot(&slot_of, src, bit);
                    }
                }
                NodeKind::Not { src } => {
                    let base = slots;
                    slots += w as u32;
                    for bit in 0..w {
                        kind.push(OpKind::Not);
                        a.push(slot(&slot_of, src, bit));
                        b.push(NO_SLOT);
                        c.push(NO_SLOT);
                        dst.push(base + bit as u32);
                        dst2.push(NO_SLOT);
                        slot_of[i * w + bit] = base + bit as u32;
                    }
                }
                NodeKind::Output { src } => {
                    // Outputs must be physically contiguous blocks (the
                    // MISR folds and the diff scan walk them as plane
                    // slices), so the aliased source is gathered.
                    let base = slots;
                    slots += w as u32;
                    for bit in 0..w {
                        kind.push(OpKind::Copy);
                        a.push(slot(&slot_of, src, bit));
                        b.push(NO_SLOT);
                        c.push(NO_SLOT);
                        dst.push(base + bit as u32);
                        dst2.push(NO_SLOT);
                        slot_of[i * w + bit] = base + bit as u32;
                    }
                }
                NodeKind::Add { a: na, b: nb } | NodeKind::Sub { a: na, b: nb } => {
                    let subtract = matches!(netlist.nodes()[i].kind, NodeKind::Sub { .. });
                    let top = netlist.msb_trim(netlist.node_id(i)) as usize;
                    let sum_base = slots;
                    slots += (top + 1) as u32;
                    arith.insert(
                        i as u32,
                        ArithOps { base_op: kind.len() as u32, top: top as u32, carry_base: None },
                    );
                    // The ripple carry chain: cell 0 starts from the
                    // constant carry-in (all-ones for `a + !b + 1`),
                    // each cout slot feeds the next cell's cin.
                    let mut cin = if subtract { ones } else { zero };
                    for bit in 0..top {
                        let cout = slots;
                        slots += 1;
                        kind.push(if subtract { OpKind::FullN } else { OpKind::Full });
                        a.push(slot(&slot_of, na, bit));
                        b.push(slot(&slot_of, nb, bit));
                        c.push(cin);
                        dst.push(sum_base + bit as u32);
                        dst2.push(cout);
                        cin = cout;
                    }
                    kind.push(if subtract { OpKind::SumOnlyN } else { OpKind::SumOnly });
                    a.push(slot(&slot_of, na, top));
                    b.push(slot(&slot_of, nb, top));
                    c.push(cin);
                    dst.push(sum_base + top as u32);
                    dst2.push(NO_SLOT);
                    for bit in 0..=top {
                        slot_of[i * w + bit] = sum_base + bit as u32;
                    }
                    // Sign extension is wiring: upper bits alias the
                    // trimmed MSB slot.
                    for bit in top + 1..w {
                        slot_of[i * w + bit] = sum_base + top as u32;
                    }
                }
                NodeKind::CsaSum { a: na, b: nb, c: nc } => {
                    // Carry-save sum: one carry-less sum op per cell
                    // (the cell's carry output lives on the paired
                    // CsaCarry node, evaluated at its own topological
                    // position — exactly the walker's split).
                    let sum_base = slots;
                    slots += w as u32;
                    arith.insert(
                        i as u32,
                        ArithOps {
                            base_op: kind.len() as u32,
                            top: (w - 1) as u32,
                            carry_base: None,
                        },
                    );
                    for bit in 0..w {
                        kind.push(OpKind::SumOnly);
                        a.push(slot(&slot_of, na, bit));
                        b.push(slot(&slot_of, nb, bit));
                        c.push(slot(&slot_of, nc, bit));
                        dst.push(sum_base + bit as u32);
                        dst2.push(NO_SLOT);
                        slot_of[i * w + bit] = sum_base + bit as u32;
                    }
                }
                NodeKind::CsaCarry { a: na, b: nb, c: nc, sum } => {
                    // Carry-save carry: bit 0 is hardwired zero; bits
                    // 1..w are majority ops over the *cell inputs* of
                    // bits 0..w-1. The cells are physically the paired
                    // sum node's, so its fault list patches these ops
                    // too (see `rebuild_patches`).
                    let base = slots;
                    slots += (w - 1) as u32;
                    csa_carry_ops.insert(sum.index() as u32, kind.len() as u32);
                    slot_of[i * w] = zero;
                    for bit in 0..w - 1 {
                        kind.push(OpKind::Carry);
                        a.push(slot(&slot_of, na, bit));
                        b.push(slot(&slot_of, nb, bit));
                        c.push(slot(&slot_of, nc, bit));
                        dst.push(base + bit as u32);
                        dst2.push(NO_SLOT);
                        slot_of[i * w + bit + 1] = base + bit as u32;
                    }
                }
                // `NodeKind` is non-exhaustive; a new variant must get a
                // lowering rule before the kernel can run it.
                ref other => panic!("no kernel lowering for node kind {other:?}"),
            }
        }

        for (sum_node, base) in csa_carry_ops {
            arith
                .get_mut(&sum_node)
                .expect("a carry-save carry node references a compiled sum node")
                .carry_base = Some(base);
        }

        debug_assert!(
            slot_of.iter().all(|&s| s != NO_SLOT),
            "every (node, bit) plane must resolve to a physical slot"
        );

        // Uniform-kind segments over the finished tape.
        let mut segments: Vec<(OpKind, u32, u32)> = Vec::new();
        for (op, &k) in kind.iter().enumerate() {
            match segments.last_mut() {
                Some((sk, _, end)) if *sk == k && *end == op as u32 => *end = op as u32 + 1,
                _ => segments.push((k, op as u32, op as u32 + 1)),
            }
        }

        let outputs =
            netlist.output_ids().iter().map(|out| slot_of[out.index() * w]).collect::<Vec<_>>();
        let mut reg_bases = Vec::new();
        let mut latches = Vec::new();
        for &idx in netlist.register_indices() {
            let i = idx as usize;
            if let NodeKind::Register { src } = netlist.nodes()[i].kind {
                reg_bases.push(slot_of[i * w]);
                for bit in 0..w {
                    latches.push((slot_of[i * w + bit], slot_of[src.index() * w + bit]));
                }
            }
        }

        Tape {
            width: w,
            slots: slots as usize,
            kind,
            a,
            b,
            c,
            dst,
            dst2,
            segments,
            inputs,
            outputs,
            reg_bases,
            latches,
            arith,
            slot_of,
        }
    }

    /// Datapath width in bits (one slot per bit plane).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of physical bit-plane slots (including the two constant
    /// slots).
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// Number of ops on the tape.
    pub fn op_count(&self) -> usize {
        self.kind.len()
    }

    /// Number of sum-producing cell ops (`Full`/`FullN`/`SumOnly`/
    /// `SumOnlyN`) — one per full-adder cell of the design, excluding
    /// the wiring `Copy`/`Not` ops and the `Carry` ops that re-address
    /// carry-save cells from the paired carry node.
    pub fn cell_op_count(&self) -> usize {
        self.kind
            .iter()
            .filter(|k| !matches!(k, OpKind::Not | OpKind::Copy | OpKind::Carry))
            .count()
    }

    /// Number of uniform-kind segments the hot loop executes.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// A stable, human-readable rendering of the whole tape — slot
    /// blocks, every op, the segment runs and the latch pairs — used
    /// by the golden snapshot test to pin the compiled form.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tape width={} slots={} ops={} segments={} zero=s0 ones=s1",
            self.width,
            self.slots,
            self.op_count(),
            self.segments.len()
        );
        for &(node, base) in &self.inputs {
            let _ = writeln!(out, "input n{node} -> s{base}..s{}", base as usize + self.width);
        }
        for (r, &base) in self.reg_bases.iter().enumerate() {
            let _ = writeln!(out, "reg {r} -> s{base}..s{}", base as usize + self.width);
        }
        for (o, &base) in self.outputs.iter().enumerate() {
            let _ = writeln!(out, "out {o} -> s{base}..s{}", base as usize + self.width);
        }
        let mut nodes: Vec<(&u32, &ArithOps)> = self.arith.iter().collect();
        nodes.sort_by_key(|(&n, _)| n);
        for (&node, info) in nodes {
            let _ = write!(out, "arith n{node} base_op={} top={}", info.base_op, info.top);
            if let Some(cb) = info.carry_base {
                let _ = write!(out, " carry_base={cb}");
            }
            out.push('\n');
        }
        let _ = writeln!(out, "ops:");
        for i in 0..self.kind.len() {
            let _ = write!(out, "  {i:4} {:5} a=s{}", self.kind[i].mnemonic(), self.a[i]);
            if self.b[i] != NO_SLOT {
                let _ = write!(out, " b=s{}", self.b[i]);
            }
            if self.c[i] != NO_SLOT {
                let _ = write!(out, " c=s{}", self.c[i]);
            }
            let _ = write!(out, " -> s{}", self.dst[i]);
            if self.dst2[i] != NO_SLOT {
                let _ = write!(out, " co=s{}", self.dst2[i]);
            }
            out.push('\n');
        }
        let _ = writeln!(out, "segments:");
        for &(k, s, e) in &self.segments {
            let _ = writeln!(out, "  {:5} {s}..{e}", k.mnemonic());
        }
        let _ = writeln!(out, "latches:");
        for &(d, s) in &self.latches {
            let _ = writeln!(out, "  s{d} <- s{s}");
        }
        out
    }
}

/// The per-word fault lists of one patched op: `(word, [(fault,
/// lanes)])` entries sorted by word index.
type WordPatches = Vec<(u32, Vec<(FaFault, u64)>)>;

/// A machine executing a [`Tape`]: the walker-compatible engine behind
/// the parallel fault simulator's default configuration.
///
/// The API mirrors [`rtl::sim::BitSlicedSim`] (step, fault injection,
/// output diff, MISR folding, per-lane register snapshots) and is
/// bit-identical to it — see the module docs for the argument. With
/// [`KernelSim::with_words`] the machine carries `N` independent
/// 64-lane pattern words per pass over the same instruction stream;
/// the lane-indexed APIs (diff, folding, snapshots) address word 0.
#[derive(Debug)]
pub struct KernelSim<'t> {
    tape: &'t Tape,
    words: usize,
    /// Bit-plane buffer, slot-major: slot `s` of word `k` lives at
    /// `s * words + k`, so one op's `words` operand planes are
    /// contiguous. The hot loop runs op-outer/word-inner: the `words`
    /// lanes of a ripple-carry cell are independent, so the serialized
    /// carry chain of one word overlaps with its neighbours' and the
    /// inner loop vectorizes.
    buf: Vec<u64>,
    /// Injected faults, keyed `(word, node)`.
    node_faults: BTreeMap<(u32, u32), Vec<CellFault>>,
    /// Per-op patch list, sorted by op index; each entry carries the
    /// faulted words (sorted) with their lane-masked fault lists.
    patches: Vec<(u32, WordPatches)>,
    /// Architectural register state, latch-major (`latch * words +
    /// word`; mirrors the walker's separate `state` array): committed
    /// into the register slots at the start of each step, gathered
    /// from the latch source slots at its end — so mid-cycle reads see
    /// the register *output* and snapshots see the latched *state*,
    /// exactly like hardware.
    reg_state: Vec<u64>,
}

impl<'t> KernelSim<'t> {
    /// A single-word (64-lane) machine with all registers zero and no
    /// faults — the drop-in replacement for
    /// [`rtl::sim::BitSlicedSim::new`].
    pub fn new(tape: &'t Tape) -> Self {
        Self::with_words(tape, 1)
    }

    /// A machine carrying `words` independent 64-lane pattern words
    /// per pass (`words >= 1`) over one shared instruction stream —
    /// the parallel simulator batches that many fault shards into one
    /// machine. [`KernelSim::set_faults`] applies a fault set to every
    /// word; [`KernelSim::set_faults_in_word`] faults one word alone.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn with_words(tape: &'t Tape, words: usize) -> Self {
        assert!(words > 0, "a kernel machine needs at least one word");
        let mut buf = vec![0u64; tape.slots * words];
        buf[words..2 * words].fill(!0u64); // slot 1: constant all-ones
        let reg_state = vec![0u64; tape.latches.len() * words];
        KernelSim { tape, words, buf, node_faults: BTreeMap::new(), patches: Vec::new(), reg_state }
    }

    /// The executed tape.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// The number of 64-lane words per pass.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Resets all register state to zero (faults are kept).
    pub fn reset(&mut self) {
        self.reg_state.fill(0);
        for &reg in &self.tape.reg_bases {
            let lo = reg as usize * self.words;
            let hi = (reg as usize + self.tape.width) * self.words;
            self.buf[lo..hi].fill(0);
        }
    }

    /// Injects faults into an adder/subtractor/carry-save node of
    /// *every* word, replacing any faults previously set on that node
    /// — the same contract (and panic conditions) as
    /// [`rtl::sim::BitSlicedSim::set_faults`]. Each fault becomes a
    /// patch on the one tape op of its cell; faults on trimmed sign
    /// cells above the node's MSB are inert, exactly as in the walker.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an arithmetic node or a cell index is
    /// outside the datapath width.
    pub fn set_faults(&mut self, node: NodeId, faults: Vec<CellFault>) {
        for word in 1..self.words as u32 {
            self.install_faults(word, node, faults.clone());
        }
        self.install_faults(0, node, faults);
        self.rebuild_patches();
    }

    /// Injects faults into an adder/subtractor/carry-save node of one
    /// pattern word only, replacing any faults previously set on that
    /// `(word, node)` pair — the per-shard form the parallel simulator
    /// uses when batching several fault shards into one machine.
    ///
    /// # Panics
    ///
    /// Panics like [`KernelSim::set_faults`], or if `word` is out of
    /// range.
    pub fn set_faults_in_word(&mut self, word: usize, node: NodeId, faults: Vec<CellFault>) {
        assert!(word < self.words, "word {word} out of range");
        self.install_faults(word as u32, node, faults);
        self.rebuild_patches();
    }

    fn install_faults(&mut self, word: u32, node: NodeId, faults: Vec<CellFault>) {
        assert!(
            self.tape.arith.contains_key(&(node.index() as u32)),
            "faults can only be injected into adders/subtractors"
        );
        for f in &faults {
            assert!((f.cell as usize) < self.tape.width, "cell {} outside datapath", f.cell);
        }
        if faults.is_empty() {
            self.node_faults.remove(&(word, node.index() as u32));
        } else {
            self.node_faults.insert((word, node.index() as u32), faults);
        }
    }

    /// Removes every injected fault from every word.
    pub fn clear_all_faults(&mut self) {
        self.node_faults.clear();
        self.patches.clear();
    }

    fn rebuild_patches(&mut self) {
        let mut per_op: BTreeMap<u32, BTreeMap<u32, Vec<(FaFault, u64)>>> = BTreeMap::new();
        for (&(word, node), faults) in &self.node_faults {
            let info = self.tape.arith[&node];
            for f in faults {
                // Cells above the trimmed MSB have no hardware; the
                // walker's per-bit fault scan never reaches them.
                if f.cell > info.top {
                    continue;
                }
                per_op
                    .entry(info.base_op + f.cell)
                    .or_default()
                    .entry(word)
                    .or_default()
                    .push((f.fault, f.lanes));
                // A carry-save cell's gates also drive the paired
                // carry node's bit+1 output (the top cell's carry is
                // discarded, hence no op to patch).
                if let Some(carry_base) = info.carry_base {
                    if f.cell < info.top {
                        per_op
                            .entry(carry_base + f.cell)
                            .or_default()
                            .entry(word)
                            .or_default()
                            .push((f.fault, f.lanes));
                    }
                }
            }
        }
        self.patches =
            per_op.into_iter().map(|(op, words)| (op, words.into_iter().collect())).collect();
    }

    /// Advances one clock cycle with the same input word broadcast to
    /// all lanes of every word.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have exactly one input.
    pub fn step(&mut self, input_raw: i64) {
        assert_eq!(self.tape.inputs.len(), 1, "netlist does not have exactly one input");
        let base = self.tape.inputs[0].1;
        self.commit_registers();
        let bits = input_raw as u64;
        for b in 0..self.tape.width {
            let v = if (bits >> b) & 1 == 1 { !0u64 } else { 0 };
            let lo = (base as usize + b) * self.words;
            self.buf[lo..lo + self.words].fill(v);
        }
        self.exec();
        self.gather_registers();
    }

    /// Advances one clock cycle with a distinct input word per pattern
    /// word — the multi-word form of [`KernelSim::step`].
    ///
    /// # Panics
    ///
    /// Panics if `raws` does not hold exactly [`KernelSim::words`]
    /// entries or the netlist does not have exactly one input.
    pub fn step_words(&mut self, raws: &[i64]) {
        assert_eq!(self.tape.inputs.len(), 1, "netlist does not have exactly one input");
        assert_eq!(raws.len(), self.words, "one input word per pattern word");
        let base = self.tape.inputs[0].1;
        self.commit_registers();
        for (word, &raw) in raws.iter().enumerate() {
            let bits = raw as u64;
            for b in 0..self.tape.width {
                self.buf[(base as usize + b) * self.words + word] =
                    if (bits >> b) & 1 == 1 { !0u64 } else { 0 };
            }
        }
        self.exec();
        self.gather_registers();
    }

    fn exec(&mut self) {
        if self.patches.is_empty() {
            for s in 0..self.tape.segments.len() {
                let (k, lo, hi) = self.tape.segments[s];
                self.run_segment(k, lo as usize, hi as usize);
            }
            return;
        }
        // Split the straight-line stream at the patch points: clean
        // runs stay on the segment fast path, each patched cell runs
        // through the interpretive gate model in place (for its
        // faulted words; clean words of the same op take the fast
        // expressions), preserving the carry chain through it.
        let patches = std::mem::take(&mut self.patches);
        let mut seg = 0usize;
        let mut cursor = 0u32;
        for p in &patches {
            seg = self.run_range(seg, cursor, p.0);
            self.run_patched(p);
            cursor = p.0 + 1;
        }
        self.run_range(seg, cursor, self.tape.kind.len() as u32);
        self.patches = patches;
    }

    /// Executes clean ops in `[from, to)`, resuming the segment walk at
    /// `seg_idx`; returns the segment index to resume from next.
    fn run_range(&mut self, mut seg_idx: usize, from: u32, to: u32) -> usize {
        while seg_idx < self.tape.segments.len() {
            let (k, s, e) = self.tape.segments[seg_idx];
            if s >= to {
                break;
            }
            let lo = s.max(from);
            let hi = e.min(to);
            if lo < hi {
                self.run_segment(k, lo as usize, hi as usize);
            }
            if e <= to {
                seg_idx += 1;
            } else {
                break;
            }
        }
        seg_idx
    }

    fn run_segment(&mut self, kind: OpKind, start: usize, end: usize) {
        // Monomorphize the common word counts so the inner loops run
        // over fixed-size arrays: loading each operand plane into a
        // local `[u64; W]` breaks the may-alias chain between operand
        // reads and destination writes (everything lives in one `buf`),
        // which is what lets the compiler keep sources in registers and
        // vectorize the word-wise expressions. Odd-sized trailing
        // groups take the dynamic-width form.
        match self.words {
            1 => self.run_segment_w::<1>(kind, start, end),
            2 => self.run_segment_w::<2>(kind, start, end),
            4 => self.run_segment_w::<4>(kind, start, end),
            8 => self.run_segment_w::<8>(kind, start, end),
            16 => self.run_segment_w::<16>(kind, start, end),
            _ => self.run_segment_dyn(kind, start, end),
        }
    }

    fn run_segment_w<const W: usize>(&mut self, kind: OpKind, start: usize, end: usize) {
        debug_assert_eq!(self.words, W);
        let t = self.tape;
        let buf = &mut self.buf[..];
        let load = |buf: &[u64], base: usize| -> [u64; W] {
            buf[base..base + W].try_into().expect("plane")
        };
        // Op-outer, word-inner: the inner loop's `W` lanes are
        // independent and contiguous, so the ripple-carry store→load
        // chain of one word pipelines against its neighbours'.
        match kind {
            OpKind::Full | OpKind::FullN => {
                let neg = if kind == OpKind::FullN { !0u64 } else { 0 };
                for i in start..end {
                    let av = load(buf, t.a[i] as usize * W);
                    let bn = load(buf, t.b[i] as usize * W);
                    let cv = load(buf, t.c[i] as usize * W);
                    let (d, d2) = (t.dst[i] as usize * W, t.dst2[i] as usize * W);
                    let mut sum = [0u64; W];
                    let mut cry = [0u64; W];
                    for k in 0..W {
                        let bv = bn[k] ^ neg;
                        let x1 = av[k] ^ bv;
                        sum[k] = x1 ^ cv[k];
                        cry[k] = (av[k] & bv) | (x1 & cv[k]);
                    }
                    buf[d..d + W].copy_from_slice(&sum);
                    buf[d2..d2 + W].copy_from_slice(&cry);
                }
            }
            OpKind::SumOnly | OpKind::SumOnlyN => {
                let neg = if kind == OpKind::SumOnlyN { !0u64 } else { 0 };
                for i in start..end {
                    let av = load(buf, t.a[i] as usize * W);
                    let bn = load(buf, t.b[i] as usize * W);
                    let cv = load(buf, t.c[i] as usize * W);
                    let d = t.dst[i] as usize * W;
                    let mut sum = [0u64; W];
                    for k in 0..W {
                        sum[k] = av[k] ^ bn[k] ^ neg ^ cv[k];
                    }
                    buf[d..d + W].copy_from_slice(&sum);
                }
            }
            OpKind::Carry => {
                for i in start..end {
                    let av = load(buf, t.a[i] as usize * W);
                    let bv = load(buf, t.b[i] as usize * W);
                    let cv = load(buf, t.c[i] as usize * W);
                    let d = t.dst[i] as usize * W;
                    let mut cry = [0u64; W];
                    for k in 0..W {
                        cry[k] = (av[k] & bv[k]) | ((av[k] ^ bv[k]) & cv[k]);
                    }
                    buf[d..d + W].copy_from_slice(&cry);
                }
            }
            OpKind::Not => {
                for i in start..end {
                    let av = load(buf, t.a[i] as usize * W);
                    let d = t.dst[i] as usize * W;
                    let mut out = [0u64; W];
                    for k in 0..W {
                        out[k] = !av[k];
                    }
                    buf[d..d + W].copy_from_slice(&out);
                }
            }
            OpKind::Copy => {
                for i in start..end {
                    let (a, d) = (t.a[i] as usize * W, t.dst[i] as usize * W);
                    buf.copy_within(a..a + W, d);
                }
            }
        }
    }

    /// Dynamic-width fallback for word counts without a monomorphized
    /// form — bit-identical to [`KernelSim::run_segment_w`], just
    /// without the fixed-size register blocking.
    fn run_segment_dyn(&mut self, kind: OpKind, start: usize, end: usize) {
        let t = self.tape;
        let w = self.words;
        let buf = &mut self.buf[..];
        match kind {
            OpKind::Full | OpKind::FullN => {
                let neg = if kind == OpKind::FullN { !0u64 } else { 0 };
                for i in start..end {
                    let (a, b, c) = (t.a[i] as usize * w, t.b[i] as usize * w, t.c[i] as usize * w);
                    let (d, d2) = (t.dst[i] as usize * w, t.dst2[i] as usize * w);
                    for k in 0..w {
                        let av = buf[a + k];
                        let bv = buf[b + k] ^ neg;
                        let cv = buf[c + k];
                        let x1 = av ^ bv;
                        buf[d + k] = x1 ^ cv;
                        buf[d2 + k] = (av & bv) | (x1 & cv);
                    }
                }
            }
            OpKind::SumOnly | OpKind::SumOnlyN => {
                let neg = if kind == OpKind::SumOnlyN { !0u64 } else { 0 };
                for i in start..end {
                    let (a, b, c) = (t.a[i] as usize * w, t.b[i] as usize * w, t.c[i] as usize * w);
                    let d = t.dst[i] as usize * w;
                    for k in 0..w {
                        buf[d + k] = buf[a + k] ^ buf[b + k] ^ neg ^ buf[c + k];
                    }
                }
            }
            OpKind::Carry => {
                for i in start..end {
                    let (a, b, c) = (t.a[i] as usize * w, t.b[i] as usize * w, t.c[i] as usize * w);
                    let d = t.dst[i] as usize * w;
                    for k in 0..w {
                        let (av, bv, cv) = (buf[a + k], buf[b + k], buf[c + k]);
                        buf[d + k] = (av & bv) | ((av ^ bv) & cv);
                    }
                }
            }
            OpKind::Not => {
                for i in start..end {
                    let (a, d) = (t.a[i] as usize * w, t.dst[i] as usize * w);
                    for k in 0..w {
                        buf[d + k] = !buf[a + k];
                    }
                }
            }
            OpKind::Copy => {
                for i in start..end {
                    let (a, d) = (t.a[i] as usize * w, t.dst[i] as usize * w);
                    buf.copy_within(a..a + w, d);
                }
            }
        }
    }

    /// Executes one patched cell through the interpretive gate model —
    /// the exact evaluator the walker's faulted slow path uses, so the
    /// faulty planes agree bit-for-bit. A `Carry` op takes the carry
    /// output; every other kind takes the sum (plus, for full cells,
    /// the chained carry). For carry-less sum cells (trimmed MSB,
    /// carry-save sum bits) the discarded carry matches the walker's
    /// sum-only evaluation: the two evaluators agree on the sum output
    /// for every fault.
    fn run_patched(&mut self, patch: &(u32, WordPatches)) {
        let t = self.tape;
        let w = self.words;
        let op = patch.0 as usize;
        let negate = t.kind[op].negates_b();
        let carry_op = t.kind[op] == OpKind::Carry;
        let (a, b, c) = (t.a[op] as usize * w, t.b[op] as usize * w, t.c[op] as usize * w);
        let (d, d2) = (t.dst[op] as usize * w, t.dst2[op]);
        let mut faulted = patch.1.iter().peekable();
        for k in 0..w {
            let av = self.buf[a + k];
            let raw_b = self.buf[b + k];
            let bv = if negate { !raw_b } else { raw_b };
            let cv = self.buf[c + k];
            let faults: &[(FaFault, u64)] = match faulted.peek() {
                Some(&&(word, ref list)) if word as usize == k => {
                    faulted.next();
                    list
                }
                _ => &[],
            };
            if faults.is_empty() {
                // A clean word of a patched op: the fast expressions,
                // exactly as run_segment would have produced them.
                let x1 = av ^ bv;
                self.buf[d + k] = if carry_op { (av & bv) | (x1 & cv) } else { x1 ^ cv };
                if d2 != NO_SLOT {
                    self.buf[d2 as usize * w + k] = (av & bv) | (x1 & cv);
                }
            } else {
                let (sum, cout) = eval_word(av, bv, cv, faults);
                self.buf[d + k] = if carry_op { cout } else { sum };
                if d2 != NO_SLOT {
                    self.buf[d2 as usize * w + k] = cout;
                }
            }
        }
    }

    /// Commits the architectural state into the register slots — the
    /// walker's "Register copies state into planes" arm, run once at
    /// the start of a step.
    fn commit_registers(&mut self) {
        let w = self.words;
        for (k, &(dst, _)) in self.tape.latches.iter().enumerate() {
            let lo = dst as usize * w;
            self.buf[lo..lo + w].copy_from_slice(&self.reg_state[k * w..(k + 1) * w]);
        }
    }

    /// Gathers every register's next value into the architectural
    /// state — the walker's `latch_registers`. The register slots are
    /// untouched until the next step's commit, so chained registers
    /// (and post-step reads) observe pre-latch values, like the
    /// walker's planes/state split.
    fn gather_registers(&mut self) {
        let w = self.words;
        for (k, &(_, src)) in self.tape.latches.iter().enumerate() {
            let lo = src as usize * w;
            self.reg_state[k * w..(k + 1) * w].copy_from_slice(&self.buf[lo..lo + w]);
        }
    }

    /// Reads one lane's word at a node (word 0), sign-extended to
    /// `i64` at the datapath width.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn lane_value(&self, node: NodeId, lane: u32) -> i64 {
        self.lane_value_in_word(0, node, lane)
    }

    /// [`KernelSim::lane_value`] for an arbitrary pattern word.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64` or `word` is out of range.
    pub fn lane_value_in_word(&self, word: usize, node: NodeId, lane: u32) -> i64 {
        assert!(lane < 64, "lane out of range");
        assert!(word < self.words, "word {word} out of range");
        let w = self.tape.width;
        let mut bits: u64 = 0;
        for b in 0..w {
            let slot = self.tape.slot_of[node.index() * w + b] as usize;
            bits |= ((self.buf[slot * self.words + word] >> lane) & 1) << b;
        }
        let shift = 64 - w;
        ((bits << shift) as i64) >> shift
    }

    /// Mask of lanes (word 0) whose output words differ from
    /// `reference_lane`'s this cycle — identical to
    /// [`rtl::sim::BitSlicedSim::output_diff_lanes`].
    pub fn output_diff_lanes(&self, reference_lane: u32) -> u64 {
        self.output_diff_lanes_in_word(0, reference_lane)
    }

    /// [`KernelSim::output_diff_lanes`] for an arbitrary pattern word.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn output_diff_lanes_in_word(&self, word: usize, reference_lane: u32) -> u64 {
        assert!(word < self.words, "word {word} out of range");
        let w = self.tape.width;
        let mut diff: u64 = 0;
        for &base in &self.tape.outputs {
            for b in 0..w {
                let plane = self.buf[(base as usize + b) * self.words + word];
                let good = (plane >> reference_lane) & 1;
                let broadcast = good.wrapping_neg();
                diff |= plane ^ broadcast;
            }
        }
        diff & !(1u64 << reference_lane)
    }

    /// Folds the current cycle's output planes (word 0) into a
    /// signature bank, one [`MisrBank::absorb_planes`] per output node
    /// in [`Netlist::output_ids`] order — identical to
    /// [`rtl::sim::BitSlicedSim::fold_outputs`].
    pub fn fold_outputs(&self, bank: &mut MisrBank) {
        self.fold_outputs_in_word(0, bank);
    }

    /// [`KernelSim::fold_outputs`] for an arbitrary pattern word: each
    /// word carries its own shard of faults, so each folds into its
    /// own bank.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn fold_outputs_in_word(&self, word: usize, bank: &mut MisrBank) {
        assert!(word < self.words, "word {word} out of range");
        let w = self.tape.width;
        let mut planes = [0u64; 64];
        for &base in &self.tape.outputs {
            for (b, plane) in planes.iter_mut().enumerate().take(w) {
                *plane = self.buf[(base as usize + b) * self.words + word];
            }
            bank.absorb_planes(&planes[..w]);
        }
    }

    /// Snapshot of one lane's register state (word 0; one `width`-bit
    /// word per register, in [`Netlist::register_indices`] order).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn register_state_lane(&self, lane: u32) -> Vec<u64> {
        self.register_state_lane_in_word(0, lane)
    }

    /// [`KernelSim::register_state_lane`] for an arbitrary pattern
    /// word.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64` or `word` is out of range.
    pub fn register_state_lane_in_word(&self, word: usize, lane: u32) -> Vec<u64> {
        assert!(lane < 64, "lane out of range");
        assert!(word < self.words, "word {word} out of range");
        let w = self.tape.width;
        (0..self.tape.reg_bases.len())
            .map(|r| {
                let mut bits: u64 = 0;
                for b in 0..w {
                    bits |= ((self.reg_state[(r * w + b) * self.words + word] >> lane) & 1) << b;
                }
                bits
            })
            .collect()
    }

    /// Writes a register-state snapshot into one lane (word 0) — the
    /// inverse of [`KernelSim::register_state_lane`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the register count
    /// or `lane >= 64`.
    pub fn set_register_state_lane(&mut self, lane: u32, snapshot: &[u64]) {
        self.set_register_state_lane_in_word(0, lane, snapshot);
    }

    /// [`KernelSim::set_register_state_lane`] for an arbitrary pattern
    /// word.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the register count,
    /// `lane >= 64`, or `word` is out of range.
    pub fn set_register_state_lane_in_word(&mut self, word: usize, lane: u32, snapshot: &[u64]) {
        assert!(lane < 64, "lane out of range");
        assert!(word < self.words, "word {word} out of range");
        assert_eq!(
            snapshot.len(),
            self.tape.reg_bases.len(),
            "snapshot does not match register count"
        );
        let w = self.tape.width;
        for (r, &bits) in snapshot.iter().enumerate() {
            for b in 0..w {
                let mask = 1u64 << lane;
                let idx = (r * w + b) * self.words + word;
                if (bits >> b) & 1 == 1 {
                    self.reg_state[idx] |= mask;
                } else {
                    self.reg_state[idx] &= !mask;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultUniverse;
    use rtl::range::{aligned_input_range, RangeAnalysis};
    use rtl::sim::BitSlicedSim;
    use rtl::NetlistBuilder;

    /// A netlist exercising every compiled construct: shifts, chained
    /// registers, add, sub, not, set-lsb, constants and a carry-save
    /// stage.
    fn kitchen_sink(width: u32) -> Netlist {
        let mut b = NetlistBuilder::new(width).unwrap();
        let x = b.input("x");
        let d1 = b.register(x);
        let d2 = b.register(d1); // chained registers: latch-order hazard
        let t0 = b.shift_right(x, 1);
        let t1 = b.shift_right(d1, 2);
        let k = b.constant(3);
        let a1 = b.add_labeled(t0, t1, "a1");
        let nk = b.not_word(k);
        let sl = b.set_lsb(nk);
        let s1 = b.sub_labeled(a1, sl, "s1");
        let (cs, cc) = b.csa(s1, d2, t1, "cs");
        let a2 = b.add_labeled(cs, cc, "a2");
        b.output(a2, "y");
        b.finish().unwrap()
    }

    fn pseudo_inputs(width: u32, n: usize) -> Vec<i64> {
        let hi = (1i64 << (width - 1)) - 1;
        let mut x = 0x1234_5678u64;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 16) as i64 % (2 * hi + 1)) - hi
            })
            .collect()
    }

    fn assert_machines_agree(netlist: &Netlist, walker: &BitSlicedSim<'_>, kernel: &KernelSim<'_>) {
        for lane in [0u32, 1, 17, 63] {
            assert_eq!(walker.output_diff_lanes(lane), kernel.output_diff_lanes(lane));
            assert_eq!(walker.register_state_lane(lane), kernel.register_state_lane(lane));
            for id in netlist.node_ids() {
                assert_eq!(
                    walker.lane_value(id, lane),
                    kernel.lane_value(id, lane),
                    "node {id} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn clean_machine_matches_the_walker_everywhere() {
        let n = kitchen_sink(10);
        let tape = Tape::compile(&n);
        let mut walker = BitSlicedSim::new(&n);
        let mut kernel = KernelSim::new(&tape);
        for raw in pseudo_inputs(10, 200) {
            walker.step(raw);
            kernel.step(raw);
            assert_machines_agree(&n, &walker, &kernel);
        }
    }

    #[test]
    fn every_universe_fault_matches_the_walker() {
        // The in-crate differential: inject every collapsed fault
        // site (sharded 63 at a time, like the parallel simulator)
        // into both engines and hold all planes equal every cycle.
        let n = kitchen_sink(8);
        let ranges = RangeAnalysis::analyze(&n, aligned_input_range(8, 8));
        let universe = FaultUniverse::enumerate(&n, &ranges);
        assert!(universe.len() > 63, "want more than one shard");
        let tape = Tape::compile(&n);
        let sites: Vec<_> = universe.ids().collect();
        for group in sites.chunks(63) {
            let mut walker = BitSlicedSim::new(&n);
            let mut kernel = KernelSim::new(&tape);
            let mut per_node: HashMap<NodeId, Vec<CellFault>> = HashMap::new();
            for (slot, &fid) in group.iter().enumerate() {
                let site = universe.site(fid);
                per_node.entry(site.node).or_default().push(CellFault {
                    cell: site.cell,
                    fault: site.representative,
                    lanes: 1u64 << (slot + 1),
                });
            }
            for (node, faults) in per_node {
                walker.set_faults(node, faults.clone());
                kernel.set_faults(node, faults);
            }
            for raw in pseudo_inputs(8, 96) {
                walker.step(raw);
                kernel.step(raw);
                assert_machines_agree(&n, &walker, &kernel);
            }
        }
    }

    #[test]
    fn signature_folding_matches_the_walker() {
        let n = kitchen_sink(9);
        let tape = Tape::compile(&n);
        let mut walker = BitSlicedSim::new(&n);
        let mut kernel = KernelSim::new(&tape);
        let mut wb = MisrBank::with_polynomial(16, 0x1100B).unwrap();
        let mut kb = MisrBank::with_polynomial(16, 0x1100B).unwrap();
        for raw in pseudo_inputs(9, 150) {
            walker.step(raw);
            kernel.step(raw);
            walker.fold_outputs(&mut wb);
            kernel.fold_outputs(&mut kb);
        }
        for lane in 0..64 {
            assert_eq!(wb.lane_signature(lane), kb.lane_signature(lane));
        }
    }

    #[test]
    fn state_snapshots_round_trip_and_faults_clear() {
        let n = kitchen_sink(8);
        let tape = Tape::compile(&n);
        let mut kernel = KernelSim::new(&tape);
        for raw in pseudo_inputs(8, 10) {
            kernel.step(raw);
        }
        let snap = kernel.register_state_lane(0);
        kernel.set_register_state_lane(5, &snap);
        assert_eq!(kernel.register_state_lane(5), snap);
        kernel.reset();
        assert!(kernel.register_state_lane(0).iter().all(|&b| b == 0));

        // Fault set/replace/clear mirrors the walker's contract.
        let node = n.arithmetic_ids()[0];
        let f = CellFault {
            cell: 0,
            fault: FaFault { line: rtl::fulladder::Line::Sum, stuck_one: true },
            lanes: 2,
        };
        kernel.set_faults(node, vec![f]);
        assert_eq!(kernel.patches.len(), 1);
        kernel.set_faults(node, vec![]);
        assert!(kernel.patches.is_empty());
        kernel.set_faults(node, vec![f]);
        kernel.clear_all_faults();
        assert!(kernel.patches.is_empty());
    }

    #[test]
    #[should_panic(expected = "faults can only be injected into adders/subtractors")]
    fn set_faults_rejects_non_arithmetic_nodes() {
        let n = kitchen_sink(8);
        let tape = Tape::compile(&n);
        let mut kernel = KernelSim::new(&tape);
        let input = n.input_ids()[0];
        kernel.set_faults(input, vec![]);
    }

    #[test]
    fn multi_word_lanes_match_independent_single_word_runs() {
        let n = kitchen_sink(8);
        let tape = Tape::compile(&n);
        let a = pseudo_inputs(8, 80);
        let b: Vec<i64> = pseudo_inputs(8, 80).iter().map(|&v| -v).collect();
        let node = n.arithmetic_ids()[1];
        let f = CellFault {
            cell: 1,
            fault: FaFault { line: rtl::fulladder::Line::Cout, stuck_one: false },
            lanes: 1u64 << 7,
        };

        let mut wide = KernelSim::with_words(&tape, 2);
        let mut lone_a = KernelSim::new(&tape);
        let mut lone_b = KernelSim::new(&tape);
        wide.set_faults(node, vec![f]);
        lone_a.set_faults(node, vec![f]);
        lone_b.set_faults(node, vec![f]);
        for (&ra, &rb) in a.iter().zip(&b) {
            wide.step_words(&[ra, rb]);
            lone_a.step(ra);
            lone_b.step(rb);
            // The bare lane APIs address word 0...
            assert_eq!(wide.output_diff_lanes(0), lone_a.output_diff_lanes(0));
            assert_eq!(wide.register_state_lane(7), lone_a.register_state_lane(7));
            // ...and the `_in_word` forms address word 1, which
            // carried its own independent patterns.
            assert_eq!(wide.output_diff_lanes_in_word(1, 0), lone_b.output_diff_lanes(0));
            assert_eq!(wide.register_state_lane_in_word(1, 7), lone_b.register_state_lane(7));
        }
        // Final planes of word 1 equal the second single-word
        // machine's, slot for slot (slot-major: word 1 is the odd
        // stride).
        let slots = tape.slot_count();
        let word1: Vec<u64> = (0..slots).map(|s| wide.buf[s * 2 + 1]).collect();
        let word0: Vec<u64> = (0..slots).map(|s| wide.buf[s * 2]).collect();
        assert_eq!(word1, lone_b.buf);
        assert_ne!(word0, word1);
    }

    #[test]
    fn per_word_faults_are_isolated_to_their_word() {
        // Two words, two different fault shards: each word must match
        // a single-word machine carrying only its own shard — the
        // property the parallel simulator's shard batching rests on.
        let n = kitchen_sink(8);
        let tape = Tape::compile(&n);
        let inputs = pseudo_inputs(8, 120);
        let node_a = n.arithmetic_ids()[0];
        let node_b = n.arithmetic_ids()[2];
        let fa = CellFault {
            cell: 0,
            fault: FaFault { line: rtl::fulladder::Line::Sum, stuck_one: true },
            lanes: 1u64 << 3,
        };
        let fb = CellFault {
            cell: 2,
            fault: FaFault { line: rtl::fulladder::Line::AStem, stuck_one: false },
            lanes: 1u64 << 9,
        };

        let mut wide = KernelSim::with_words(&tape, 2);
        wide.set_faults_in_word(0, node_a, vec![fa]);
        wide.set_faults_in_word(1, node_b, vec![fb]);
        let mut lone_a = KernelSim::new(&tape);
        lone_a.set_faults(node_a, vec![fa]);
        let mut lone_b = KernelSim::new(&tape);
        lone_b.set_faults(node_b, vec![fb]);
        let mut bank_w0 = MisrBank::with_polynomial(16, 0x1100B).unwrap();
        let mut bank_w1 = MisrBank::with_polynomial(16, 0x1100B).unwrap();
        let mut bank_a = MisrBank::with_polynomial(16, 0x1100B).unwrap();
        let mut bank_b = MisrBank::with_polynomial(16, 0x1100B).unwrap();
        for &raw in &inputs {
            wide.step(raw);
            lone_a.step(raw);
            lone_b.step(raw);
            wide.fold_outputs_in_word(0, &mut bank_w0);
            wide.fold_outputs_in_word(1, &mut bank_w1);
            lone_a.fold_outputs(&mut bank_a);
            lone_b.fold_outputs(&mut bank_b);
            assert_eq!(wide.output_diff_lanes_in_word(0, 0), lone_a.output_diff_lanes(0));
            assert_eq!(wide.output_diff_lanes_in_word(1, 0), lone_b.output_diff_lanes(0));
        }
        for lane in 0..64 {
            assert_eq!(bank_w0.lane_signature(lane), bank_a.lane_signature(lane));
            assert_eq!(bank_w1.lane_signature(lane), bank_b.lane_signature(lane));
        }
    }

    #[test]
    fn tape_shape_is_consistent() {
        let n = kitchen_sink(8);
        let tape = Tape::compile(&n);
        assert!(tape.op_count() > 0);
        assert!(tape.segment_count() <= tape.op_count());
        assert!(tape.cell_op_count() < tape.op_count(), "copy/not ops exist here");
        // SSA: no physical slot is written by two ops, and the
        // constant slots are never written.
        let mut written = std::collections::HashSet::new();
        for i in 0..tape.op_count() {
            for d in [tape.dst[i], tape.dst2[i]] {
                if d != NO_SLOT {
                    assert!(d >= 2, "op {i} writes a constant slot");
                    assert!(written.insert(d), "op {i} rewrites slot {d}");
                }
            }
        }
        // Straight-line order: every op reads slots produced earlier,
        // or input/register/constant slots.
        let mut ready: std::collections::HashSet<u32> = [0u32, 1].into_iter().collect();
        for &(_, base) in &tape.inputs {
            ready.extend(base..base + tape.width() as u32);
        }
        for &base in &tape.reg_bases {
            ready.extend(base..base + tape.width() as u32);
        }
        for i in 0..tape.op_count() {
            for s in [tape.a[i], tape.b[i], tape.c[i]] {
                if s != NO_SLOT {
                    assert!(ready.contains(&s), "op {i} reads unproduced slot {s}");
                }
            }
            ready.insert(tape.dst[i]);
            if tape.dst2[i] != NO_SLOT {
                ready.insert(tape.dst2[i]);
            }
        }
        // The dump is stable and self-consistent.
        let dump = tape.dump();
        assert_eq!(dump, tape.dump());
        assert!(dump.starts_with("tape width=8"));
        assert!(dump.matches("\n  ").count() >= tape.op_count());
    }
}
