//! End-to-end daemon tests: real sockets, real campaigns (on the
//! LP-MINI design so each runs in milliseconds), real shutdown.

use bist_bistd::{Client, ClientError, Daemon, DaemonConfig, ServerAddr};
use bist_core::campaign::CampaignSpec;
use obs::JsonValue;
use std::path::PathBuf;

fn tcp_daemon(config: DaemonConfig) -> (Daemon, ServerAddr) {
    let daemon = Daemon::start(DaemonConfig { tcp: Some("127.0.0.1:0".into()), ..config }).unwrap();
    let addr = ServerAddr::Tcp(daemon.tcp_addr().unwrap().to_string());
    (daemon, addr)
}

fn temp_path(name: &str) -> PathBuf {
    let unique = format!(
        "bistd-test-{}-{name}",
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    );
    std::env::temp_dir().join(unique)
}

fn mini_spec(vectors: usize) -> CampaignSpec {
    CampaignSpec { threads: 1, ..CampaignSpec::new("LP-MINI", "LFSR-D", vectors) }
}

/// A slow campaign: the full LP design over a long test with a stage
/// boundary every 256 cycles, so cancellation always has a nearby
/// boundary to land on.
fn slow_spec() -> CampaignSpec {
    CampaignSpec {
        threads: 1,
        boundaries: Some((1..3900).map(|i| i * 256).collect()),
        ..CampaignSpec::new("LP", "LFSR-D", 1_000_000)
    }
}

#[test]
fn resubmitted_campaign_hits_the_cache_bit_identically() {
    let (daemon, addr) = tcp_daemon(DaemonConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let spec = mini_spec(64);
    let cold = client.run_campaign(&spec, None).unwrap();
    assert!(!cold.cached, "first run computes");
    assert_eq!(cold.key, spec.canonical());
    assert_eq!(cold.artifact.get("design").and_then(JsonValue::as_str), Some("LP-MINI"));

    let warm = client.run_campaign(&spec, None).unwrap();
    assert!(warm.cached, "identical resubmission is a cache hit");
    assert_ne!(warm.job, cold.job, "hits still get fresh job ids");
    assert_eq!(warm.artifact.to_json(), cold.artifact.to_json(), "cache replay is bit-identical");

    // Any single-field change misses.
    let changed = CampaignSpec { vectors: 65, ..spec.clone() };
    let miss = client.run_campaign(&changed, None).unwrap();
    assert!(!miss.cached);
    assert_ne!(miss.key, cold.key);

    // The daemon's metrics saw exactly one hit and two misses.
    let metrics = client.metrics().unwrap();
    let counters = metrics.get("counters").unwrap();
    assert_eq!(counters.get("bistd.cache.hits").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(counters.get("bistd.cache.misses").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(counters.get("bistd.jobs_completed").and_then(JsonValue::as_u64), Some(2));
    // Gauges and per-stage histograms are being served too.
    assert!(metrics.get("gauges").unwrap().get("bistd.queue_depth").is_some());
    assert!(metrics.get("histograms").unwrap().get("bistd.stage.session.fault_sim").is_some());

    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn unix_socket_serves_the_same_protocol() {
    let socket = temp_path("e2e.sock");
    let daemon =
        Daemon::start(DaemonConfig { unix: Some(socket.clone()), ..DaemonConfig::default() })
            .unwrap();
    let addr = ServerAddr::Unix(socket.clone());
    let mut client = Client::connect(&addr).unwrap();
    let result = client.run_campaign(&mini_spec(32), None).unwrap();
    assert!(!result.cached);
    assert_eq!(result.artifact.get("vectors").and_then(JsonValue::as_u64), Some(32));
    client.shutdown().unwrap();
    daemon.join().unwrap();
    assert!(!socket.exists(), "socket file removed on clean shutdown");
}

#[test]
fn topoff_specs_round_trip_through_the_daemon() {
    let (daemon, addr) = tcp_daemon(DaemonConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let spec = CampaignSpec {
        topoff: Some(bist_core::TopOffConfig { block_len: 64, max_seeds: 8 }),
        ..mini_spec(64)
    };
    let cold = client.run_campaign(&spec, None).unwrap();
    assert!(cold.key.ends_with(";topoff=block64,seeds8"), "{}", cold.key);
    let report = cold.artifact.get("topoff").expect("artifact carries the top-off report");
    let residue = report.get("residue").and_then(JsonValue::as_u64).unwrap();
    let parts: u64 = ["untestable", "detected", "unresolved"]
        .iter()
        .map(|k| report.get(k).and_then(JsonValue::as_u64).unwrap())
        .sum();
    assert_eq!(parts, residue, "verdicts partition the residue");

    // The same campaign without the stage is a distinct cache entry
    // whose artifact has no top-off key at all.
    let plain = client.run_campaign(&mini_spec(64), None).unwrap();
    assert!(!plain.cached);
    assert!(plain.artifact.get("topoff").is_none());

    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn sat_specs_round_trip_through_the_daemon() {
    let (daemon, addr) = tcp_daemon(DaemonConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let spec = CampaignSpec {
        sat: Some(bist_core::session::SatConfig { max_conflicts: 500, equiv: true }),
        ..mini_spec(64)
    };
    let cold = client.run_campaign(&spec, None).unwrap();
    assert!(cold.key.ends_with(";sat=conf500,equiv1"), "{}", cold.key);
    let report = cold.artifact.get("sat").expect("artifact carries the sat report");
    // LP-MINI's screen yields no candidates, but the stage still runs
    // the equivalence certificate and the census lands in the artifact.
    assert_eq!(report.get("candidates").and_then(JsonValue::as_u64), Some(0));
    assert_eq!(report.get("equiv_proved").and_then(JsonValue::as_bool), Some(true));
    // The admission lint carried the L6xx census over the wire.
    assert!(cold.lint.iter().any(|d| d.code == "L601"), "{:?}", cold.lint);

    // The same campaign without the stage is a distinct cache entry
    // whose artifact has no sat key at all.
    let plain = client.run_campaign(&mini_spec(64), None).unwrap();
    assert!(!plain.cached);
    assert!(plain.artifact.get("sat").is_none());

    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn collapse_specs_round_trip_through_the_daemon() {
    let (daemon, addr) = tcp_daemon(DaemonConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let spec = CampaignSpec { collapse: true, ..mini_spec(64) };
    let cold = client.run_campaign(&spec, None).unwrap();
    assert!(cold.key.ends_with(";collapse=on"), "{}", cold.key);
    let report = cold.artifact.get("collapse").expect("artifact carries the collapse census");
    let classes = report.get("classes_after").and_then(JsonValue::as_u64).unwrap();
    let sites = report.get("sites_before").and_then(JsonValue::as_u64).unwrap();
    assert!(classes < sites, "collapse removed machines: {classes} vs {sites}");
    // The admission lint carried the L7xx census over the wire.
    assert!(cold.lint.iter().any(|d| d.code == "L701"), "{:?}", cold.lint);

    // The same campaign without the stage is a distinct cache entry
    // whose artifact has no collapse key — and whose detection verdicts
    // are identical, the stage being strictly observational.
    let plain = client.run_campaign(&mini_spec(64), None).unwrap();
    assert!(!plain.cached);
    assert!(plain.artifact.get("collapse").is_none());
    for field in ["detected", "missed", "coverage", "signature", "total_faults"] {
        assert_eq!(
            cold.artifact.get(field).map(JsonValue::to_json),
            plain.artifact.get(field).map(JsonValue::to_json),
            "{field} must not change under collapse"
        );
    }

    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn engine_specs_round_trip_through_the_daemon() {
    let (daemon, addr) = tcp_daemon(DaemonConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    // The walker is the non-default engine, so it shows up in the cache
    // key — after every other stage suffix.
    let spec = CampaignSpec { engine: bist_core::SimEngine::Walker, ..mini_spec(64) };
    let walked = client.run_campaign(&spec, None).unwrap();
    assert!(walked.key.ends_with(";engine=walker"), "{}", walked.key);

    // The default kernel engine stays out of the key (old cache entries
    // keep their addresses) and produces bit-identical verdicts.
    let kernel = client.run_campaign(&mini_spec(64), None).unwrap();
    assert!(!kernel.cached);
    assert!(!kernel.key.contains("engine"), "{}", kernel.key);
    for field in ["detected", "missed", "coverage", "signature", "total_faults"] {
        assert_eq!(
            walked.artifact.get(field).map(JsonValue::to_json),
            kernel.artifact.get(field).map(JsonValue::to_json),
            "{field} must not depend on the engine"
        );
    }

    client.shutdown().unwrap();
    daemon.join().unwrap();
}

/// Rebuilds a JSON value with every `ms` object entry dropped, so two
/// artifacts can be compared byte-for-byte modulo wall-clock timings.
fn without_timings(v: &JsonValue) -> JsonValue {
    if let Some(pairs) = v.as_object() {
        let mut out = JsonValue::object();
        for (key, value) in pairs {
            if key != "ms" {
                out = out.push(key.as_str(), without_timings(value));
            }
        }
        out
    } else if let Some(items) = v.as_array() {
        items.iter().map(without_timings).collect::<Vec<_>>().into()
    } else {
        v.clone()
    }
}

#[test]
fn remote_artifact_matches_inline_run_byte_for_byte() {
    let (daemon, addr) = tcp_daemon(DaemonConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    let spec = mini_spec(48);
    let remote = client.run_campaign(&spec, None).unwrap();
    // The daemon (default: annotate) attaches admission lint to the
    // artifact, so the equivalent inline run is the linted one.
    let admission = lint::admission_lint(&spec, None).unwrap();
    let inline = spec.run_linted(None, admission).unwrap();
    // Stage wall-clock timings are the one nondeterministic field;
    // everything else must agree byte-for-byte.
    assert_eq!(
        without_timings(&remote.artifact).to_json(),
        without_timings(&inline.artifact.to_json()).to_json(),
        "the daemon path and the inline path produce identical artifacts"
    );
    assert_eq!(remote.lint, inline.artifact.lint, "submit reply carries the same diagnostics");
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn cancel_stops_a_job_and_reports_cancelled() {
    let (daemon, addr) = tcp_daemon(DaemonConfig { workers: 1, ..DaemonConfig::default() });
    let mut client = Client::connect(&addr).unwrap();
    let sub = client.submit(&slow_spec(), None).unwrap();
    assert!(!sub.cached);
    let job = sub.job;
    client.cancel(job).unwrap();
    let err = client.fetch_artifact(job).unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "cancelled"),
        other => panic!("expected a cancelled error, got {other}"),
    }
    let (state, detail) = client.status(job).unwrap();
    assert_eq!(state, "cancelled");
    assert!(detail.is_some());
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn deadline_expires_a_job_with_deadline_detail() {
    let (daemon, addr) = tcp_daemon(DaemonConfig { workers: 1, ..DaemonConfig::default() });
    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(&slow_spec(), Some(1)).unwrap().job;
    let err = client.fetch_artifact(job).unwrap_err();
    match err {
        ClientError::Server { code, message, .. } => {
            assert_eq!(code, "cancelled");
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected a deadline error, got {other}"),
    }
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn full_queue_rejects_with_retry_hint_and_keeps_serving() {
    let (daemon, addr) =
        tcp_daemon(DaemonConfig { workers: 1, queue_capacity: 1, ..DaemonConfig::default() });
    let mut client = Client::connect(&addr).unwrap();
    // With one worker and a one-slot queue, three instant submissions
    // of distinct slow campaigns cannot all be accepted.
    let specs: Vec<CampaignSpec> =
        (0..3).map(|i| CampaignSpec { vectors: 200_000 + i, ..slow_spec() }).collect();
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for spec in &specs {
        match client.submit(spec, None) {
            Ok(sub) => accepted.push(sub.job),
            Err(ClientError::Server { code, retry_after_ms, .. }) => {
                assert_eq!(code, "queue_full");
                assert!(retry_after_ms.unwrap_or(0) > 0, "backpressure carries a retry hint");
                rejected += 1;
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(rejected >= 1, "at least one submit must hit backpressure");
    // The daemon still answers after rejecting.
    for job in &accepted {
        client.cancel(*job).unwrap();
    }
    assert!(client.metrics().is_ok());
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn unknown_jobs_and_draining_submits_are_structured_errors() {
    let (daemon, addr) = tcp_daemon(DaemonConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    match client.status(999).unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, "unknown_job"),
        other => panic!("{other}"),
    }
    match client.cancel(999).unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, "unknown_job"),
        other => panic!("{other}"),
    }
    // Server-side validation: a bogus generator is a bad_request with
    // the registry spelled out, not a panic.
    match client.submit(&CampaignSpec::new("LP-MINI", "bogus", 16), None).unwrap_err() {
        ClientError::Server { code, message, .. } => {
            assert_eq!(code, "bad_request");
            assert!(message.contains("unknown generator"), "{message}");
            assert!(message.contains("LFSR-D"), "lists known names: {message}");
        }
        other => panic!("{other}"),
    }
    client.shutdown().unwrap();
    // After shutdown, new submissions on a still-open connection are
    // refused in a structured way.
    match client.submit(&mini_spec(16), None).unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, "shutting_down"),
        other => panic!("{other}"),
    }
    daemon.join().unwrap();
}

#[test]
fn shutdown_drains_in_flight_jobs_and_spills_the_cache() {
    let spill = temp_path("spill.jsonl");
    let (daemon, addr) = tcp_daemon(DaemonConfig {
        workers: 1,
        spill: Some(spill.clone()),
        ..DaemonConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    // Queue two jobs, then shut down immediately: both must still
    // complete (drain), and their artifacts must reach the spill file.
    let sub_a = client.submit(&mini_spec(64), None).unwrap();
    let sub_b = client.submit(&mini_spec(96), None).unwrap();
    let ((job_a, key_a), (job_b, key_b)) = ((sub_a.job, sub_a.key), (sub_b.job, sub_b.key));
    client.shutdown().unwrap();
    daemon.join().unwrap();
    assert!(job_a != job_b);
    let spilled = std::fs::read_to_string(&spill).unwrap();
    assert_eq!(spilled.lines().count(), 2, "both drained artifacts spilled");
    assert!(spilled.contains(&key_a));
    assert!(spilled.contains(&key_b));

    // A fresh daemon reloading that spill serves both as cache hits.
    let (daemon, addr) =
        tcp_daemon(DaemonConfig { spill: Some(spill.clone()), ..DaemonConfig::default() });
    let mut client = Client::connect(&addr).unwrap();
    let warm = client.run_campaign(&mini_spec(64), None).unwrap();
    assert!(warm.cached, "spill reload restores the cache");
    client.shutdown().unwrap();
    daemon.join().unwrap();
    let _ = std::fs::remove_file(&spill);
}

#[test]
fn lint_modes_annotate_reject_and_off() {
    use bist_bistd::LintMode;
    // Annotate (default): the spectrally incompatible LP x LFSR-1
    // pairing is accepted but the reply carries the L201 error.
    let (daemon, addr) = tcp_daemon(DaemonConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    let incompatible = CampaignSpec { threads: 1, ..CampaignSpec::new("LP", "LFSR-1", 16) };
    let sub = client.submit(&incompatible, None).unwrap();
    assert!(sub.lint.iter().any(|d| d.code == "L201"), "{:?}", sub.lint);
    client.cancel(sub.job).unwrap();
    client.shutdown().unwrap();
    daemon.join().unwrap();

    // Reject: the same submission is refused with lint_rejected, no
    // fault-simulation cycle runs, and compatible work still passes.
    let (daemon, addr) = tcp_daemon(DaemonConfig { lint: LintMode::Reject, ..Default::default() });
    let mut client = Client::connect(&addr).unwrap();
    match client.submit(&incompatible, None).unwrap_err() {
        ClientError::Server { code, message, .. } => {
            assert_eq!(code, "lint_rejected");
            assert!(message.contains("L201"), "{message}");
        }
        other => panic!("{other}"),
    }
    let ok = client.run_campaign(&mini_spec(16), None).unwrap();
    assert!(ok.artifact.get("lint").is_some(), "annotations still attach under reject");
    client.shutdown().unwrap();
    daemon.join().unwrap();

    // Off: no diagnostics anywhere, wire bytes match the pre-lint form.
    let (daemon, addr) = tcp_daemon(DaemonConfig { lint: LintMode::Off, ..Default::default() });
    let mut client = Client::connect(&addr).unwrap();
    let sub = client.submit(&incompatible, None).unwrap();
    assert!(sub.lint.is_empty());
    client.cancel(sub.job).unwrap();
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn lru_cap_bounds_the_cache() {
    let (daemon, addr) = tcp_daemon(DaemonConfig { cache_capacity: 2, ..DaemonConfig::default() });
    let mut client = Client::connect(&addr).unwrap();
    let a = mini_spec(16);
    let b = mini_spec(17);
    let c = mini_spec(18);
    assert!(!client.run_campaign(&a, None).unwrap().cached);
    assert!(!client.run_campaign(&b, None).unwrap().cached);
    assert!(!client.run_campaign(&c, None).unwrap().cached, "evicts a");
    assert!(client.run_campaign(&c, None).unwrap().cached);
    assert!(client.run_campaign(&b, None).unwrap().cached);
    assert!(!client.run_campaign(&a, None).unwrap().cached, "a was the LRU victim");
    client.shutdown().unwrap();
    daemon.join().unwrap();
}
