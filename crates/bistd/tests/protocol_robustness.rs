//! Adversarial wire-level tests: garbage headers, oversized and
//! truncated frames, malformed payloads, mid-stream disconnects. The
//! daemon must answer each with a structured error where a reply is
//! still possible, and must keep serving other (and, for payload-level
//! problems, the same) connections afterwards.

use bist_bistd::{Client, Daemon, DaemonConfig, ServerAddr};
use bist_core::campaign::CampaignSpec;
use obs::JsonValue;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

struct Harness {
    daemon: Option<Daemon>,
    addr: ServerAddr,
}

impl Harness {
    fn start() -> Harness {
        let daemon = Daemon::start(DaemonConfig {
            tcp: Some("127.0.0.1:0".into()),
            ..DaemonConfig::default()
        })
        .unwrap();
        let addr = ServerAddr::Tcp(daemon.tcp_addr().unwrap().to_string());
        Harness { daemon: Some(daemon), addr }
    }

    fn raw(&self) -> TcpStream {
        let ServerAddr::Tcp(addr) = &self.addr else { unreachable!() };
        TcpStream::connect(addr).unwrap()
    }

    /// Proof of life: a fresh, well-behaved connection round-trips.
    fn assert_still_serving(&self) {
        let mut client = Client::connect(&self.addr).unwrap();
        let snapshot = client.metrics().unwrap();
        assert!(snapshot.get("counters").is_some());
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        if let Some(daemon) = self.daemon.take() {
            daemon.begin_shutdown();
            let _ = daemon.join();
        }
    }
}

/// Sends raw bytes, half-closes the write side so the daemon sees EOF
/// even on incomplete frames, reads until the daemon closes, and
/// returns everything it said.
fn send_raw(harness: &Harness, bytes: &[u8]) -> String {
    let mut stream = harness.raw();
    stream.write_all(bytes).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    let _ = stream.read_to_string(&mut reply);
    reply
}

/// Extracts the error code from a one-frame error reply.
fn error_code(reply: &str) -> String {
    let payload = reply
        .split_once('\n')
        .map(|(_, rest)| rest.trim_end())
        .unwrap_or_else(|| panic!("no frame in reply {reply:?}"));
    let v = JsonValue::parse(payload).unwrap_or_else(|e| panic!("unparseable {payload:?}: {e}"));
    assert_eq!(v.get("reply").and_then(JsonValue::as_str), Some("error"), "{payload}");
    v.get("code").and_then(JsonValue::as_str).unwrap().to_string()
}

#[test]
fn garbage_header_gets_structured_error_then_close() {
    let harness = Harness::start();
    let reply = send_raw(&harness, b"GET / HTTP/1.1\r\n\r\n");
    assert_eq!(error_code(&reply), "bad_frame");
    harness.assert_still_serving();
}

#[test]
fn future_protocol_version_is_named_explicitly() {
    let harness = Harness::start();
    let reply = send_raw(&harness, b"BISTD/2 2\n{}\n");
    assert_eq!(error_code(&reply), "unsupported_version");
    assert!(reply.contains("version 2"), "{reply}");
    harness.assert_still_serving();
}

#[test]
fn oversized_frame_is_rejected_before_payload() {
    let harness = Harness::start();
    // Advertise 8 MiB but send nothing: the daemon must reject on the
    // header alone rather than buffering.
    let reply = send_raw(&harness, b"BISTD/1 8388608\n");
    assert_eq!(error_code(&reply), "bad_frame");
    assert!(reply.contains("exceeds"), "{reply}");
    harness.assert_still_serving();
}

#[test]
fn truncated_frame_and_midstream_disconnect_do_not_wedge() {
    let harness = Harness::start();
    // Truncated header.
    drop(send_raw(&harness, b"BISTD/1 10"));
    // Header promising more payload than ever arrives, then hangup.
    {
        let mut stream = harness.raw();
        stream.write_all(b"BISTD/1 100\n{\"op\":\"st").unwrap();
    }
    // Hangup with no bytes at all.
    drop(harness.raw());
    harness.assert_still_serving();
}

#[test]
fn malformed_payload_answers_and_connection_keeps_serving() {
    let harness = Harness::start();
    let stream = harness.raw();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let read_payload = |reader: &mut BufReader<TcpStream>| {
        let mut header = String::new();
        reader.read_line(&mut header).unwrap();
        let len: usize = header.trim_end().strip_prefix("BISTD/1 ").unwrap().parse().unwrap();
        let mut payload = vec![0u8; len + 1];
        reader.read_exact(&mut payload).unwrap();
        payload.pop();
        String::from_utf8(payload).unwrap()
    };

    // Frame 1: well-framed, unparseable JSON → bad_frame, stay open.
    writer.write_all(b"BISTD/1 5\n{nope\n").unwrap();
    let v = JsonValue::parse(&read_payload(&mut reader)).unwrap();
    assert_eq!(v.get("code").and_then(JsonValue::as_str), Some("bad_frame"));

    // Frame 2: valid JSON, unknown op → bad_request, stay open.
    let unknown = "{\"op\":\"frobnicate\"}";
    writer.write_all(format!("BISTD/1 {}\n{unknown}\n", unknown.len()).as_bytes()).unwrap();
    let v = JsonValue::parse(&read_payload(&mut reader)).unwrap();
    assert_eq!(v.get("code").and_then(JsonValue::as_str), Some("bad_request"));
    assert!(v.get("message").and_then(JsonValue::as_str).unwrap().contains("frobnicate"));

    // Frame 3: a real request on the SAME connection still works.
    let metrics = "{\"op\":\"metrics\"}";
    writer.write_all(format!("BISTD/1 {}\n{metrics}\n", metrics.len()).as_bytes()).unwrap();
    let v = JsonValue::parse(&read_payload(&mut reader)).unwrap();
    assert_eq!(v.get("reply").and_then(JsonValue::as_str), Some("metrics"));
    let counters = v.get("snapshot").unwrap().get("counters").unwrap();
    assert!(
        counters.get("bistd.bad_requests").and_then(JsonValue::as_u64).unwrap_or(0) >= 2,
        "both malformed frames were counted"
    );
}

#[test]
fn submit_with_invalid_spec_content_is_bad_request_not_panic() {
    let harness = Harness::start();
    let mut client = Client::connect(&harness.addr).unwrap();
    for spec in [
        CampaignSpec::new("NOPE", "LFSR-D", 64),
        CampaignSpec::new("LP-MINI", "NOPE", 64),
        CampaignSpec::new("LP-MINI", "LFSR-D", 0),
        CampaignSpec {
            boundaries: Some(vec![64, 64]),
            ..CampaignSpec::new("LP-MINI", "LFSR-D", 64)
        },
    ] {
        match client.submit(&spec, None) {
            Err(bist_bistd::ClientError::Server { code, .. }) => {
                assert_eq!(code, "bad_request", "{spec:?}")
            }
            other => panic!("{spec:?}: expected bad_request, got {other:?}"),
        }
    }
    harness.assert_still_serving();
}
