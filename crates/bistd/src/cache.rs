//! The content-addressed result cache: canonical campaign key →
//! completed `RunArtifact` JSON.
//!
//! Keys are the [`CampaignSpec::canonical`] string hashed with
//! hand-rolled 64-bit FNV-1a. Because a hash can collide, every bucket
//! stores the full canonical string and lookups compare it — a
//! collision costs a miss-then-second-entry, never a wrong artifact.
//! Eviction is least-recently-used under a fixed entry cap, and the
//! whole cache can spill to / reload from a JSONL file so a restarted
//! daemon keeps its history. Since `obs::json` serialization is
//! byte-deterministic, a cache hit replays the artifact bit-identically
//! to the run that produced it.
//!
//! [`CampaignSpec::canonical`]: bist_core::campaign::CampaignSpec::canonical

use obs::JsonValue;
use std::collections::HashMap;
use std::io::{self, BufRead, Write};

/// The FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

struct Entry {
    canonical: String,
    artifact: JsonValue,
    last_used: u64,
}

/// The in-memory LRU cache. Not internally synchronized — the daemon
/// wraps it in a `Mutex`.
pub struct ResultCache {
    buckets: HashMap<u64, Vec<Entry>>,
    capacity: usize,
    len: usize,
    clock: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` artifacts.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache { buckets: HashMap::new(), capacity, len: 0, clock: 0 }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the artifact for a canonical key, refreshing its LRU
    /// position on a hit.
    pub fn get(&mut self, canonical: &str) -> Option<JsonValue> {
        self.clock += 1;
        let clock = self.clock;
        let bucket = self.buckets.get_mut(&fnv1a(canonical.as_bytes()))?;
        let entry = bucket.iter_mut().find(|e| e.canonical == canonical)?;
        entry.last_used = clock;
        Some(entry.artifact.clone())
    }

    /// Stores (or refreshes) an artifact, evicting the least recently
    /// used entry if the cache is at capacity. A zero-capacity cache
    /// stores nothing.
    pub fn insert(&mut self, canonical: &str, artifact: JsonValue) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        let hash = fnv1a(canonical.as_bytes());
        let bucket = self.buckets.entry(hash).or_default();
        if let Some(entry) = bucket.iter_mut().find(|e| e.canonical == canonical) {
            entry.artifact = artifact;
            entry.last_used = clock;
            return;
        }
        if self.len >= self.capacity {
            self.evict_lru();
        }
        self.buckets.entry(hash).or_default().push(Entry {
            canonical: canonical.to_string(),
            artifact,
            last_used: clock,
        });
        self.len += 1;
    }

    fn evict_lru(&mut self) {
        let victim = self
            .buckets
            .iter()
            .flat_map(|(hash, bucket)| bucket.iter().map(move |e| (*hash, e.last_used)))
            .min_by_key(|(_, last_used)| *last_used);
        let Some((hash, last_used)) = victim else {
            return;
        };
        let bucket = self.buckets.get_mut(&hash).expect("victim bucket exists");
        let index =
            bucket.iter().position(|e| e.last_used == last_used).expect("victim entry exists");
        bucket.swap_remove(index);
        if bucket.is_empty() {
            self.buckets.remove(&hash);
        }
        self.len -= 1;
    }

    /// Writes every entry as one JSONL line
    /// (`{"key":"<hex>","canonical":"...","artifact":{...}}`),
    /// most-recently-used last, and returns how many were written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn spill(&self, writer: &mut impl Write) -> io::Result<usize> {
        let mut entries: Vec<&Entry> = self.buckets.values().flatten().collect();
        entries.sort_by_key(|e| e.last_used);
        for entry in &entries {
            let line = JsonValue::object()
                .push("key", format!("{:016x}", fnv1a(entry.canonical.as_bytes())))
                .push("canonical", entry.canonical.as_str())
                .push("artifact", entry.artifact.clone());
            writeln!(writer, "{}", line.to_json())?;
        }
        writer.flush()?;
        Ok(entries.len())
    }

    /// Reloads entries from a spill stream, inserting in file order (so
    /// the last line is the most recently used). Malformed lines and
    /// lines whose recomputed key disagrees with the recorded one are
    /// skipped, never fatal; returns `(loaded, skipped)`.
    pub fn load(&mut self, reader: impl BufRead) -> (usize, usize) {
        let (mut loaded, mut skipped) = (0, 0);
        for line in reader.lines() {
            let Ok(line) = line else {
                skipped += 1;
                continue;
            };
            if line.trim().is_empty() {
                continue;
            }
            match parse_spill_line(&line) {
                Some((canonical, artifact)) => {
                    self.insert(&canonical, artifact);
                    loaded += 1;
                }
                None => skipped += 1,
            }
        }
        (loaded, skipped)
    }
}

fn parse_spill_line(line: &str) -> Option<(String, JsonValue)> {
    let v = JsonValue::parse(line).ok()?;
    let canonical = v.get("canonical")?.as_str()?.to_string();
    let recorded_key = v.get("key")?.as_str()?;
    if recorded_key != format!("{:016x}", fnv1a(canonical.as_bytes())) {
        return None;
    }
    let artifact = v.get("artifact")?.clone();
    Some((canonical, artifact))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(tag: u64) -> JsonValue {
        JsonValue::object().push("schema", 1u64).push("tag", tag)
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published 64-bit FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hits_are_exact_and_misses_are_misses() {
        let mut cache = ResultCache::new(8);
        assert!(cache.get("k1").is_none());
        cache.insert("k1", artifact(1));
        assert_eq!(cache.get("k1"), Some(artifact(1)));
        assert!(cache.get("k2").is_none(), "different canonical, different entry");
        // Re-insert overwrites in place.
        cache.insert("k1", artifact(2));
        assert_eq!(cache.get("k1"), Some(artifact(2)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = ResultCache::new(3);
        cache.insert("a", artifact(1));
        cache.insert("b", artifact(2));
        cache.insert("c", artifact(3));
        // Touch "a" so "b" is the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("d", artifact(4));
        assert_eq!(cache.len(), 3);
        assert!(cache.get("b").is_none(), "LRU entry evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert!(cache.get("d").is_some());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cache = ResultCache::new(0);
        cache.insert("a", artifact(1));
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
    }

    #[test]
    fn spill_and_load_round_trip_bit_identically() {
        let mut cache = ResultCache::new(8);
        cache.insert("design=LP;vectors=64", artifact(1));
        cache.insert("design=HP;vectors=64", artifact(2));
        let mut spilled = Vec::new();
        assert_eq!(cache.spill(&mut spilled).unwrap(), 2);

        let mut reloaded = ResultCache::new(8);
        let (loaded, skipped) = reloaded.load(&spilled[..]);
        assert_eq!((loaded, skipped), (2, 0));
        // Bit-identical artifacts after the round trip.
        assert_eq!(reloaded.get("design=LP;vectors=64").unwrap().to_json(), artifact(1).to_json());
        assert_eq!(reloaded.get("design=HP;vectors=64").unwrap().to_json(), artifact(2).to_json());
    }

    #[test]
    fn load_skips_malformed_and_tampered_lines() {
        let mut cache = ResultCache::new(8);
        cache.insert("good", artifact(1));
        let mut spilled = Vec::new();
        cache.spill(&mut spilled).unwrap();
        let good_line = String::from_utf8(spilled).unwrap();
        let tampered = good_line.replace("\"canonical\":\"good\"", "\"canonical\":\"evil\"");
        let input = format!("{{not json\n\n{tampered}{good_line}{{\"key\":\"nope\"}}\n");
        let mut reloaded = ResultCache::new(8);
        let (loaded, skipped) = reloaded.load(input.as_bytes());
        assert_eq!(loaded, 1, "only the intact line loads");
        assert_eq!(skipped, 3);
        assert!(reloaded.get("good").is_some());
        assert!(reloaded.get("evil").is_none(), "key mismatch rejected");
    }

    #[test]
    fn load_preserves_recency_order() {
        let mut cache = ResultCache::new(8);
        cache.insert("old", artifact(1));
        cache.insert("mid", artifact(2));
        cache.insert("new", artifact(3));
        let mut spilled = Vec::new();
        cache.spill(&mut spilled).unwrap();
        // Reload into a cache of 2: the two most recent survive.
        let mut reloaded = ResultCache::new(2);
        reloaded.load(&spilled[..]);
        assert!(reloaded.get("old").is_none());
        assert!(reloaded.get("mid").is_some());
        assert!(reloaded.get("new").is_some());
    }
}
