//! `bistd` — the campaign service daemon: a long-lived BIST experiment
//! runner with a job queue, a worker pool, and a content-addressed
//! result cache, speaking a framed JSON protocol over TCP and Unix
//! domain sockets.
//!
//! The library layers, bottom-up:
//!
//! * [`frame`] — length-prefixed `BISTD/1` framing with a hard size
//!   cap; every malformed input is a structured error, never a panic.
//! * [`proto`] — the request/response messages and their JSON wire
//!   forms, built on `obs::json`.
//! * [`queue`] — a bounded FIFO with blocking consumers and
//!   reject-fast producers (the `queue_full` backpressure path).
//! * [`jobs`] — the job table: every submission's lifecycle from
//!   `queued` to a terminal state, with race-free cancellation.
//! * [`cache`] — FNV-1a content addressing of canonical campaign keys
//!   to completed artifacts, LRU-bounded, with JSONL spill/reload.
//!   Hits replay artifacts bit-identically to the run that made them.
//! * [`worker`] — N threads driving `CampaignSpec::run` with per-job
//!   [`faultsim::CancelToken`]s (deadlines and `cancel` both land at
//!   fault-simulation stage boundaries).
//! * [`daemon`] — accept loops, dispatch, graceful drain-and-spill
//!   shutdown, and a per-daemon [`obs::Registry`] served by the
//!   `metrics` request. Submits are statically linted at admission
//!   ([`daemon::LintMode`]): diagnostics annotate the reply and the
//!   run's artifact, and `--lint reject` refuses campaigns carrying an
//!   error-severity diagnostic without simulating a single vector.
//! * [`client`] — the programmatic client used by `bistctl` and the
//!   `bench` harness's `--server` mode.
//!
//! Everything is `std`-only, matching the workspace's offline build
//! gate.

#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod frame;
pub mod jobs;
pub mod proto;
pub mod queue;
pub mod worker;

pub use client::{CampaignResult, Client, ClientError, ServerAddr, Submission};
pub use daemon::{Daemon, DaemonConfig, LintMode};
