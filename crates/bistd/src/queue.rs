//! A bounded FIFO job queue with blocking consumers and
//! reject-don't-block producers.
//!
//! Producers (connection threads) must never stall a client, so
//! [`JobQueue::push`] fails fast with [`PushError::Full`] — the daemon
//! turns that into a `queue_full` reply with a retry hint. Consumers
//! (worker threads) block in [`JobQueue::pop`] until work arrives or
//! the queue is closed; closing still drains everything already
//! queued, which is what makes shutdown graceful rather than lossy.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; retry later.
    Full,
    /// The queue was closed; no new work is accepted.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded multi-producer / multi-consumer queue.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// An open queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; for metrics/backpressure
    /// hints only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an item, without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`].
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and takes it. Returns `None`
    /// only once the queue is closed *and* drained — consumers use that
    /// as their exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes fail, queued items still drain,
    /// and blocked consumers wake.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = JobQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = JobQueue::new(4);
        q.push('a').unwrap();
        q.push('b').unwrap();
        q.close();
        assert_eq!(q.push('c'), Err(PushError::Closed));
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(JobQueue::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for i in 0..30 {
            while q.push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap().len()).sum();
        assert_eq!(total, 30, "every item consumed exactly once");
    }
}
