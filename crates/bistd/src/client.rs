//! The client side of the campaign service: connect, speak frames, and
//! drive whole campaigns to completion.
//!
//! Used by the `bistctl` binary and by the `bench` harness's
//! `--server` mode. A [`Client`] owns one connection and issues one
//! request at a time (the protocol is strictly request/response per
//! frame); [`Client::run_campaign`] wraps submit-then-fetch, polling
//! with bounded server-side waits until the job is terminal.

use crate::frame::{self, FrameError};
use crate::proto::{Request, Response};
use bist_core::campaign::CampaignSpec;
use obs::JsonValue;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Where a daemon lives: `unix:<path>` or a TCP `host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerAddr {
    /// TCP, e.g. `127.0.0.1:4817`.
    Tcp(String),
    /// Unix domain socket path.
    Unix(PathBuf),
}

impl ServerAddr {
    /// Parses an address string: a `unix:` prefix selects a Unix
    /// socket, anything else is a TCP `host:port`.
    pub fn parse(text: &str) -> ServerAddr {
        match text.strip_prefix("unix:") {
            Some(path) => ServerAddr::Unix(PathBuf::from(path)),
            None => ServerAddr::Tcp(text.to_string()),
        }
    }
}

impl fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerAddr::Tcp(addr) => write!(f, "{addr}"),
            ServerAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The stream carried unreadable framing.
    Frame(FrameError),
    /// The daemon replied with something the protocol does not allow
    /// here.
    Protocol(String),
    /// The daemon replied with a structured error.
    Server {
        /// One of [`crate::proto::codes`].
        code: String,
        /// The daemon's explanation.
        message: String,
        /// Backpressure hint, when the daemon offered one.
        retry_after_ms: Option<u64>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A successful submit reply.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The server-assigned job id.
    pub job: u64,
    /// Whether the result was served from the cache.
    pub cached: bool,
    /// The spec's canonical cache key.
    pub key: String,
    /// The accepted response-check mode (`"trace"` or `"signature"`).
    pub mode: String,
    /// Admission-time lint diagnostics (empty when the daemon does not
    /// lint, or found nothing).
    pub lint: Vec<obs::Diagnostic>,
}

/// The outcome of one complete campaign round trip.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The server-assigned job id.
    pub job: u64,
    /// Whether the artifact was served from the result cache.
    pub cached: bool,
    /// The spec's canonical cache key.
    pub key: String,
    /// The accepted response-check mode (`"trace"` or `"signature"`).
    pub mode: String,
    /// Admission-time lint diagnostics from the submit reply.
    pub lint: Vec<obs::Diagnostic>,
    /// The `RunArtifact` JSON object.
    pub artifact: JsonValue,
}

/// One connection to a campaign daemon.
pub struct Client {
    reader: Box<dyn BufRead + Send>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection cannot be established.
    pub fn connect(addr: &ServerAddr) -> Result<Client, ClientError> {
        match addr {
            ServerAddr::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                let reader = BufReader::new(stream.try_clone()?);
                Ok(Client { reader: Box::new(reader), writer: Box::new(stream) })
            }
            ServerAddr::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                let reader = BufReader::new(stream.try_clone()?);
                Ok(Client { reader: Box::new(reader), writer: Box::new(stream) })
            }
        }
    }

    /// Sends one request and reads its reply.
    ///
    /// # Errors
    ///
    /// Transport-level [`ClientError`]s; a structured daemon refusal is
    /// returned as `Ok(Response::Error { .. })`, not an `Err`.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        frame::write_frame(&mut self.writer, &request.to_json().to_json())?;
        let payload = frame::read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        Response::parse(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Submits a campaign.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for structured refusals (including
    /// `queue_full` backpressure and `lint_rejected` admission
    /// refusals), transport errors otherwise.
    pub fn submit(
        &mut self,
        spec: &CampaignSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Submission, ClientError> {
        match self.request(&Request::Submit { spec: spec.clone(), deadline_ms })? {
            Response::Submitted { job, cached, key, mode, lint } => {
                Ok(Submission { job, cached, key, mode, lint })
            }
            other => Err(unexpected(other)),
        }
    }

    /// Fetches a job's artifact, blocking until the job is terminal.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code `job_failed` / `cancelled` for
    /// jobs that ended without an artifact.
    pub fn fetch_artifact(&mut self, job: u64) -> Result<(bool, JsonValue), ClientError> {
        loop {
            match self.request(&Request::Fetch { job, wait_ms: 30_000 })? {
                Response::Artifact { cached, artifact, .. } => return Ok((cached, artifact)),
                Response::JobStatus { .. } => continue,
                other => return Err(unexpected(other)),
            }
        }
    }

    /// Submits and fetches in one call: the remote equivalent of
    /// `CampaignSpec::run`.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the submit or fetch legs.
    pub fn run_campaign(
        &mut self,
        spec: &CampaignSpec,
        deadline_ms: Option<u64>,
    ) -> Result<CampaignResult, ClientError> {
        let submission = self.submit(spec, deadline_ms)?;
        let (fetch_cached, artifact) = self.fetch_artifact(submission.job)?;
        Ok(CampaignResult {
            job: submission.job,
            cached: submission.cached || fetch_cached,
            key: submission.key,
            mode: submission.mode,
            lint: submission.lint,
            artifact,
        })
    }

    /// Queries a job's state, returning `(state, detail)`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code `unknown_job` for bad ids.
    pub fn status(&mut self, job: u64) -> Result<(String, Option<String>), ClientError> {
        match self.request(&Request::Status { job })? {
            Response::JobStatus { state, detail, .. } => Ok((state, detail)),
            other => Err(unexpected(other)),
        }
    }

    /// Cancels a job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code `unknown_job` for bad ids.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        match self.request(&Request::Cancel { job })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Snapshots the daemon's metrics registry as JSON.
    ///
    /// # Errors
    ///
    /// Transport-level [`ClientError`]s.
    pub fn metrics(&mut self) -> Result<JsonValue, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { snapshot } => Ok(snapshot),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to drain and stop.
    ///
    /// # Errors
    ///
    /// Transport-level [`ClientError`]s.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> ClientError {
    match response {
        Response::Error { code, message, retry_after_ms } => {
            ClientError::Server { code, message, retry_after_ms }
        }
        other => ClientError::Protocol(format!("unexpected reply {:?}", other.to_json().to_json())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_parse_and_display_round_trip() {
        assert_eq!(ServerAddr::parse("127.0.0.1:4817"), ServerAddr::Tcp("127.0.0.1:4817".into()));
        assert_eq!(
            ServerAddr::parse("unix:/tmp/bistd.sock"),
            ServerAddr::Unix(PathBuf::from("/tmp/bistd.sock"))
        );
        for text in ["127.0.0.1:4817", "unix:/tmp/bistd.sock"] {
            assert_eq!(ServerAddr::parse(text).to_string(), text);
        }
    }

    #[test]
    fn errors_display_their_layer() {
        let e = ClientError::Server {
            code: "queue_full".into(),
            message: "try later".into(),
            retry_after_ms: Some(250),
        };
        assert_eq!(e.to_string(), "server error (queue_full): try later");
        let e = ClientError::Protocol("weird".into());
        assert!(e.to_string().contains("protocol"));
        let e = ClientError::from(io::Error::new(io::ErrorKind::ConnectionRefused, "nope"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn connecting_to_nothing_is_an_io_error() {
        let err = Client::connect(&ServerAddr::Unix(PathBuf::from("/nonexistent/bistd.sock")))
            .err()
            .expect("no daemon there");
        assert!(matches!(err, ClientError::Io(_)), "{err}");
    }
}
