//! The wire framing of the campaign service: length-prefixed JSON
//! documents over any byte stream.
//!
//! One frame is an ASCII header line `BISTD/<version> <len>\n`,
//! followed by exactly `len` bytes of UTF-8 JSON payload and a closing
//! `\n`. The explicit length lets both sides read a complete document
//! without scanning for delimiters inside the payload, the version in
//! every header lets a daemon reject clients from the future with a
//! structured error instead of garbage parsing, and
//! [`MAX_FRAME_BYTES`] bounds what a malicious or confused peer can
//! make the other side buffer.

use std::fmt;
use std::io::{self, BufRead, Write};

/// The protocol generation spoken by this build (the `1` in
/// `BISTD/1`). Bumped on any incompatible framing or message change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard upper bound on a frame's payload length, in bytes. A header
/// advertising more is rejected before any payload is read.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Everything that can go wrong reading or writing one frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The header line was not `BISTD/<version> <len>`.
    BadHeader {
        /// What was wrong with it.
        detail: String,
    },
    /// The peer speaks a protocol generation this build does not.
    UnsupportedVersion {
        /// The version the peer advertised.
        version: u32,
    },
    /// The advertised payload length exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// The advertised length.
        len: usize,
    },
    /// The stream ended mid-frame (header promised more bytes than
    /// arrived).
    Truncated,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::BadHeader { detail } => write!(f, "bad frame header: {detail}"),
            FrameError::UnsupportedVersion { version } => {
                write!(
                    f,
                    "unsupported protocol version {version} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            FrameError::TooLarge { len } => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads one complete frame, returning its payload text.
///
/// `Ok(None)` means the stream ended cleanly *between* frames (the
/// peer hung up); [`FrameError::Truncated`] means it ended inside one.
///
/// # Errors
///
/// Any [`FrameError`]; after a non-`Io` error the stream position is
/// undefined and the connection should be closed.
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<String>, FrameError> {
    let mut header = Vec::new();
    reader.read_until(b'\n', &mut header)?;
    if header.is_empty() {
        return Ok(None);
    }
    if header.last() != Some(&b'\n') {
        return Err(FrameError::Truncated);
    }
    header.pop();
    let len = parse_header(&header)?;
    let mut payload = vec![0u8; len + 1];
    reader.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    if payload.pop() != Some(b'\n') {
        return Err(FrameError::BadHeader { detail: "payload is not newline-terminated".into() });
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::BadHeader { detail: "payload is not valid UTF-8".into() })
}

/// Writes `payload` as one frame and flushes the stream.
///
/// # Errors
///
/// [`FrameError::TooLarge`] if the payload exceeds [`MAX_FRAME_BYTES`],
/// or [`FrameError::Io`] from the stream.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { len: payload.len() });
    }
    writer.write_all(format!("BISTD/{PROTOCOL_VERSION} {}\n", payload.len()).as_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    Ok(())
}

/// Parses a header line (without its trailing newline) into the
/// advertised payload length, checking version and size bounds.
fn parse_header(header: &[u8]) -> Result<usize, FrameError> {
    let text = std::str::from_utf8(header)
        .map_err(|_| FrameError::BadHeader { detail: "header is not valid UTF-8".into() })?;
    let rest = text.strip_prefix("BISTD/").ok_or_else(|| FrameError::BadHeader {
        detail: format!("expected 'BISTD/<version> <len>', got '{}'", clip(text)),
    })?;
    let (version, len) = rest
        .split_once(' ')
        .ok_or_else(|| FrameError::BadHeader { detail: "missing payload length".into() })?;
    let version: u32 = version.parse().map_err(|_| FrameError::BadHeader {
        detail: format!("unparseable version '{}'", clip(version)),
    })?;
    if version != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion { version });
    }
    let len: usize = len.parse().map_err(|_| FrameError::BadHeader {
        detail: format!("unparseable payload length '{}'", clip(len)),
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { len });
    }
    Ok(len)
}

/// Truncates peer-supplied text before echoing it into an error
/// message.
fn clip(text: &str) -> String {
    if text.len() <= 40 {
        text.to_string()
    } else {
        let cut = (0..=40).rev().find(|i| text.is_char_boundary(*i)).unwrap_or(0);
        format!("{}…", &text[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip(payload: &str) -> String {
        let mut wire = Vec::new();
        write_frame(&mut wire, payload).unwrap();
        read_frame(&mut BufReader::new(&wire[..])).unwrap().unwrap()
    }

    #[test]
    fn frames_round_trip() {
        assert_eq!(roundtrip("{}"), "{}");
        assert_eq!(roundtrip(""), "");
        let nasty = "{\"s\":\"line1\\nline2 BISTD/1 99\"}";
        assert_eq!(roundtrip(nasty), nasty);
        // Unicode payloads carry byte (not char) lengths.
        assert_eq!(roundtrip("\"héllo 😀\""), "\"héllo 😀\"");
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "first").unwrap();
        write_frame(&mut wire, "second").unwrap();
        let mut r = BufReader::new(&wire[..]);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("first"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("second"));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn garbage_headers_are_structured_errors() {
        for (wire, needle) in [
            (&b"HELLO\nxx"[..], "expected 'BISTD/"),
            (&b"BISTD/one 4\nabcd\n"[..], "unparseable version"),
            (&b"BISTD/1 four\nabcd\n"[..], "unparseable payload length"),
            (&b"BISTD/1\n"[..], "missing payload length"),
            (&b"\xff\xfe\n"[..], "not valid UTF-8"),
        ] {
            let err = read_frame(&mut BufReader::new(wire)).unwrap_err();
            assert!(
                matches!(err, FrameError::BadHeader { .. }),
                "{}: {err}",
                String::from_utf8_lossy(wire)
            );
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn version_and_size_violations_are_distinct_errors() {
        let future = b"BISTD/2 2\n{}\n";
        assert!(matches!(
            read_frame(&mut BufReader::new(&future[..])).unwrap_err(),
            FrameError::UnsupportedVersion { version: 2 }
        ));
        let huge = format!("BISTD/1 {}\n", MAX_FRAME_BYTES + 1);
        assert!(matches!(
            read_frame(&mut BufReader::new(huge.as_bytes())).unwrap_err(),
            FrameError::TooLarge { .. }
        ));
        let mut sink = Vec::new();
        let long = "x".repeat(MAX_FRAME_BYTES + 1);
        assert!(matches!(write_frame(&mut sink, &long).unwrap_err(), FrameError::TooLarge { .. }));
    }

    #[test]
    fn truncation_is_reported_not_hung() {
        // Header promises more payload than the stream holds.
        let wire = b"BISTD/1 10\nabc";
        assert!(matches!(
            read_frame(&mut BufReader::new(&wire[..])).unwrap_err(),
            FrameError::Truncated
        ));
        // Header line itself cut off.
        let wire = b"BISTD/1 1";
        assert!(matches!(
            read_frame(&mut BufReader::new(&wire[..])).unwrap_err(),
            FrameError::Truncated
        ));
    }

    #[test]
    fn long_garbage_is_clipped_in_error_text() {
        let wire = format!("{}\n", "junk".repeat(50));
        let err = read_frame(&mut BufReader::new(wire.as_bytes())).unwrap_err();
        assert!(err.to_string().len() < 120, "{err}");
    }
}
