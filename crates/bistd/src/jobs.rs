//! The daemon's job table: every submitted campaign's lifecycle, from
//! `queued` through a terminal state, observable by id.
//!
//! The table is the single source of truth for job state; the queue
//! only carries ids. All transitions happen under one lock so a
//! concurrent `cancel` and a worker claiming the same job can never
//! both win: [`JobTable::claim`] atomically checks the cancel token
//! before flipping `queued → running`.

use bist_core::campaign::CampaignSpec;
use faultsim::CancelToken;
use obs::JsonValue;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A job's position in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully; an artifact is attached.
    Done,
    /// Finished with an error; the detail says why.
    Failed,
    /// Cancelled explicitly or by deadline before finishing.
    Cancelled,
}

impl JobState {
    /// The lowercase wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the state is final.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// Everything the daemon tracks about one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job's id (assigned at submit, starting from 1).
    pub id: u64,
    /// What was asked for.
    pub spec: CampaignSpec,
    /// The spec's canonical cache key.
    pub key: String,
    /// Lifecycle position.
    pub state: JobState,
    /// Failure / cancellation detail for terminal error states.
    pub detail: Option<String>,
    /// The run artifact, once `Done`.
    pub artifact: Option<JsonValue>,
    /// Whether the artifact came from the result cache.
    pub cached: bool,
    /// The cooperative cancellation handle shared with the worker.
    pub cancel: CancelToken,
    /// Admission-time static-analysis diagnostics, attached at submit
    /// and carried into the run's artifact by the worker.
    pub lint: Vec<obs::Diagnostic>,
}

/// The concurrent id → [`JobRecord`] map.
pub struct JobTable {
    inner: Mutex<Inner>,
    changed: Condvar,
}

struct Inner {
    jobs: HashMap<u64, JobRecord>,
    next_id: u64,
}

impl JobTable {
    /// An empty table.
    pub fn new() -> JobTable {
        JobTable {
            inner: Mutex::new(Inner { jobs: HashMap::new(), next_id: 1 }),
            changed: Condvar::new(),
        }
    }

    /// Registers a new job in `state` and returns its id.
    pub fn create(
        &self,
        spec: CampaignSpec,
        key: String,
        cancel: CancelToken,
        state: JobState,
    ) -> u64 {
        let mut inner = self.inner.lock().expect("job table lock");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(
            id,
            JobRecord {
                id,
                spec,
                key,
                state,
                detail: None,
                artifact: None,
                cached: false,
                cancel,
                lint: Vec::new(),
            },
        );
        id
    }

    /// Attaches admission-time lint diagnostics to a job. Workers read
    /// them back through [`JobTable::claim`] so they land in the run's
    /// artifact.
    pub fn set_lint(&self, id: u64, lint: Vec<obs::Diagnostic>) {
        let mut inner = self.inner.lock().expect("job table lock");
        if let Some(record) = inner.jobs.get_mut(&id) {
            record.lint = lint;
        }
    }

    /// Registers an already-completed job (a cache hit) and returns its
    /// id.
    pub fn create_done(&self, spec: CampaignSpec, key: String, artifact: JsonValue) -> u64 {
        let id = self.create(spec, key, CancelToken::new(), JobState::Done);
        let mut inner = self.inner.lock().expect("job table lock");
        let record = inner.jobs.get_mut(&id).expect("job just created");
        record.artifact = Some(artifact);
        record.cached = true;
        id
    }

    /// A snapshot of one job.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.inner.lock().expect("job table lock").jobs.get(&id).cloned()
    }

    /// Atomically claims a queued job for execution: flips it to
    /// `Running` and hands back what the worker needs, or — if its
    /// token already fired — marks it `Cancelled` and returns `None`.
    /// Also returns `None` for ids in any other state (e.g. cancelled
    /// while queued).
    pub fn claim(&self, id: u64) -> Option<(CampaignSpec, CancelToken, Vec<obs::Diagnostic>)> {
        let mut inner = self.inner.lock().expect("job table lock");
        let record = inner.jobs.get_mut(&id)?;
        if record.state != JobState::Queued {
            return None;
        }
        if record.cancel.is_cancelled() {
            record.state = JobState::Cancelled;
            record.detail = Some(
                if record.cancel.deadline_exceeded() {
                    "deadline exceeded before the job started"
                } else {
                    "cancelled before the job started"
                }
                .into(),
            );
            self.changed.notify_all();
            return None;
        }
        record.state = JobState::Running;
        Some((record.spec.clone(), record.cancel.clone(), record.lint.clone()))
    }

    /// Moves a job to a terminal state, attaching artifact or detail.
    pub fn finish(
        &self,
        id: u64,
        state: JobState,
        detail: Option<String>,
        artifact: Option<JsonValue>,
    ) {
        debug_assert!(state.is_terminal());
        let mut inner = self.inner.lock().expect("job table lock");
        if let Some(record) = inner.jobs.get_mut(&id) {
            record.state = state;
            record.detail = detail;
            record.artifact = artifact;
        }
        self.changed.notify_all();
    }

    /// Fires a job's cancel token. A still-queued job is marked
    /// cancelled immediately; a running one stops at its next stage
    /// boundary and the worker records the terminal state. Returns
    /// `false` for unknown ids.
    pub fn cancel(&self, id: u64) -> bool {
        let mut inner = self.inner.lock().expect("job table lock");
        let Some(record) = inner.jobs.get_mut(&id) else {
            return false;
        };
        record.cancel.cancel();
        if record.state == JobState::Queued {
            record.state = JobState::Cancelled;
            record.detail = Some("cancelled while queued".into());
            self.changed.notify_all();
        }
        true
    }

    /// Blocks until the job reaches a terminal state or `timeout`
    /// elapses, returning the final (or last observed) snapshot.
    /// `None` for unknown ids.
    pub fn wait_terminal(&self, id: u64, timeout: Duration) -> Option<JobRecord> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("job table lock");
        loop {
            let record = inner.jobs.get(&id)?;
            if record.state.is_terminal() {
                return Some(record.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(record.clone());
            }
            let (guard, _) =
                self.changed.wait_timeout(inner, deadline - now).expect("job table lock");
            inner = guard;
        }
    }

    /// How many jobs are in each state, as `(state name, count)` pairs
    /// in lifecycle order (for gauges).
    pub fn counts(&self) -> [(&'static str, usize); 5] {
        let inner = self.inner.lock().expect("job table lock");
        let mut out = [
            (JobState::Queued.name(), 0),
            (JobState::Running.name(), 0),
            (JobState::Done.name(), 0),
            (JobState::Failed.name(), 0),
            (JobState::Cancelled.name(), 0),
        ];
        for record in inner.jobs.values() {
            let slot = match record.state {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Done => 2,
                JobState::Failed => 3,
                JobState::Cancelled => 4,
            };
            out[slot].1 += 1;
        }
        out
    }
}

impl Default for JobTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec::new("LP", "LFSR-D", 64)
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let table = JobTable::new();
        let id = table.create(spec(), "k".into(), CancelToken::new(), JobState::Queued);
        assert_eq!(id, 1);
        assert_eq!(table.get(id).unwrap().state, JobState::Queued);
        let (claimed_spec, _token, _lint) = table.claim(id).unwrap();
        assert_eq!(claimed_spec, spec());
        assert_eq!(table.get(id).unwrap().state, JobState::Running);
        assert!(table.claim(id).is_none(), "running jobs cannot be claimed twice");
        table.finish(id, JobState::Done, None, Some(JsonValue::object()));
        let record = table.get(id).unwrap();
        assert_eq!(record.state, JobState::Done);
        assert!(record.artifact.is_some());
        assert!(record.state.is_terminal());
    }

    #[test]
    fn lint_attached_at_submit_reaches_the_claiming_worker() {
        let table = JobTable::new();
        let id = table.create(spec(), "k".into(), CancelToken::new(), JobState::Queued);
        let diag = obs::Diagnostic::new(
            "L102",
            obs::Severity::Warn,
            obs::Location::Node { label: "tap20.acc".into(), cell: Some(15) },
            "variance mismatch",
        );
        table.set_lint(id, vec![diag.clone()]);
        let (_spec, _token, lint) = table.claim(id).unwrap();
        assert_eq!(lint, vec![diag]);
        table.set_lint(999, vec![]); // unknown ids are a no-op
    }

    #[test]
    fn cancel_while_queued_is_immediate() {
        let table = JobTable::new();
        let id = table.create(spec(), "k".into(), CancelToken::new(), JobState::Queued);
        assert!(table.cancel(id));
        let record = table.get(id).unwrap();
        assert_eq!(record.state, JobState::Cancelled);
        assert!(record.detail.unwrap().contains("queued"));
        assert!(table.claim(id).is_none(), "a cancelled job is never claimed");
        assert!(!table.cancel(999), "unknown ids report false");
    }

    #[test]
    fn claim_observes_token_fired_between_submit_and_pop() {
        let table = JobTable::new();
        let token = CancelToken::new();
        let id = table.create(spec(), "k".into(), token.clone(), JobState::Queued);
        token.cancel();
        assert!(table.claim(id).is_none());
        assert_eq!(table.get(id).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn cache_hits_register_as_done_and_cached() {
        let table = JobTable::new();
        let id = table.create_done(spec(), "k".into(), JsonValue::object().push("schema", 1u64));
        let record = table.get(id).unwrap();
        assert_eq!(record.state, JobState::Done);
        assert!(record.cached);
        assert!(record.artifact.is_some());
    }

    #[test]
    fn wait_terminal_blocks_until_finish() {
        let table = std::sync::Arc::new(JobTable::new());
        let id = table.create(spec(), "k".into(), CancelToken::new(), JobState::Queued);
        // A zero-ish timeout returns the non-terminal snapshot.
        let early = table.wait_terminal(id, Duration::from_millis(1)).unwrap();
        assert_eq!(early.state, JobState::Queued);
        let finisher = {
            let table = std::sync::Arc::clone(&table);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                table.finish(id, JobState::Failed, Some("boom".into()), None);
            })
        };
        let record = table.wait_terminal(id, Duration::from_secs(10)).unwrap();
        assert_eq!(record.state, JobState::Failed);
        assert_eq!(record.detail.as_deref(), Some("boom"));
        finisher.join().unwrap();
        assert!(table.wait_terminal(999, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn counts_track_states() {
        let table = JobTable::new();
        let a = table.create(spec(), "k".into(), CancelToken::new(), JobState::Queued);
        let _b = table.create(spec(), "k".into(), CancelToken::new(), JobState::Queued);
        table.claim(a).unwrap();
        let counts: std::collections::HashMap<_, _> = table.counts().into_iter().collect();
        assert_eq!(counts["queued"], 1);
        assert_eq!(counts["running"], 1);
        assert_eq!(counts["done"], 0);
    }
}
