//! The request/response messages of the campaign service, and their
//! JSON wire forms.
//!
//! Every frame payload is one JSON object. Requests carry an `"op"`
//! discriminator; responses carry `"reply"`. Malformed or unknown
//! messages never panic — they parse into a [`ProtoError`] which the
//! daemon turns into a structured [`Response::Error`] so the client
//! always learns *why* it was refused.

use bist_core::campaign::CampaignSpec;
use obs::JsonValue;
use std::fmt;

/// Machine-readable error codes carried by [`Response::Error`].
pub mod codes {
    /// The frame payload was not parseable as a protocol message.
    pub const BAD_FRAME: &str = "bad_frame";
    /// The message parsed but its content was invalid (unknown design,
    /// zero vectors, ...).
    pub const BAD_REQUEST: &str = "bad_request";
    /// No job with the given id exists.
    pub const UNKNOWN_JOB: &str = "unknown_job";
    /// The job queue is at capacity; retry after the hinted delay.
    pub const QUEUE_FULL: &str = "queue_full";
    /// The daemon is draining and accepts no new work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The job ran and failed; the message carries the cause.
    pub const JOB_FAILED: &str = "job_failed";
    /// The job was cancelled (explicitly or by its deadline).
    pub const CANCELLED: &str = "cancelled";
    /// Admission-time static analysis found an error-severity
    /// diagnostic and the daemon is configured to reject on error; the
    /// message carries the first offending diagnostic.
    pub const LINT_REJECTED: &str = "lint_rejected";
    /// The client's frame header advertised a protocol generation this
    /// daemon does not speak.
    pub const UNSUPPORTED_VERSION: &str = "unsupported_version";
}

/// One client→daemon message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a campaign (or hit the result cache).
    Submit {
        /// What to run.
        spec: CampaignSpec,
        /// Per-job wall-clock budget; `None` uses the daemon default.
        deadline_ms: Option<u64>,
    },
    /// Query a job's current state.
    Status {
        /// Job id from [`Response::Submitted`].
        job: u64,
    },
    /// Fetch a job's artifact, optionally blocking until it is
    /// terminal.
    Fetch {
        /// Job id from [`Response::Submitted`].
        job: u64,
        /// How long to block waiting for completion (0 = poll).
        wait_ms: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id from [`Response::Submitted`].
        job: u64,
    },
    /// Snapshot the daemon's metric registry.
    Metrics,
    /// Stop accepting work, drain the queue, flush the cache spill.
    Shutdown,
}

impl Request {
    /// Renders the request as its JSON wire object.
    pub fn to_json(&self) -> JsonValue {
        match self {
            Request::Submit { spec, deadline_ms } => {
                let mut v = JsonValue::object().push("op", "submit").push("spec", spec.to_json());
                if let Some(ms) = deadline_ms {
                    v = v.push("deadline_ms", *ms);
                }
                v
            }
            Request::Status { job } => JsonValue::object().push("op", "status").push("job", *job),
            Request::Fetch { job, wait_ms } => {
                JsonValue::object().push("op", "fetch").push("job", *job).push("wait_ms", *wait_ms)
            }
            Request::Cancel { job } => JsonValue::object().push("op", "cancel").push("job", *job),
            Request::Metrics => JsonValue::object().push("op", "metrics"),
            Request::Shutdown => JsonValue::object().push("op", "shutdown"),
        }
    }

    /// Parses a request from frame payload text.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] describing what was malformed; the daemon maps it
    /// to [`codes::BAD_FRAME`] / [`codes::BAD_REQUEST`].
    pub fn parse(payload: &str) -> Result<Request, ProtoError> {
        let v = JsonValue::parse(payload)
            .map_err(|e| ProtoError { code: codes::BAD_FRAME, message: e.to_string() })?;
        let op = v.get("op").and_then(JsonValue::as_str).ok_or(ProtoError {
            code: codes::BAD_REQUEST,
            message: "request has no 'op' field".into(),
        })?;
        let job = |v: &JsonValue| {
            v.get("job").and_then(JsonValue::as_u64).ok_or(ProtoError {
                code: codes::BAD_REQUEST,
                message: "request needs a numeric 'job' field".into(),
            })
        };
        match op {
            "submit" => {
                let spec_json = v.get("spec").ok_or(ProtoError {
                    code: codes::BAD_REQUEST,
                    message: "submit needs a 'spec' object".into(),
                })?;
                let spec = CampaignSpec::from_json(spec_json)
                    .map_err(|e| ProtoError { code: codes::BAD_REQUEST, message: e.to_string() })?;
                Ok(Request::Submit {
                    spec,
                    deadline_ms: v.get("deadline_ms").and_then(JsonValue::as_u64),
                })
            }
            "status" => Ok(Request::Status { job: job(&v)? }),
            "fetch" => Ok(Request::Fetch {
                job: job(&v)?,
                wait_ms: v.get("wait_ms").and_then(JsonValue::as_u64).unwrap_or(0),
            }),
            "cancel" => Ok(Request::Cancel { job: job(&v)? }),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError {
                code: codes::BAD_REQUEST,
                message: format!("unknown op '{other}'"),
            }),
        }
    }
}

/// One daemon→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A submit was accepted (or served from cache).
    Submitted {
        /// The job id for later `status`/`fetch`/`cancel`.
        job: u64,
        /// Whether the result came from the content-addressed cache.
        cached: bool,
        /// The canonical cache key the spec hashed to.
        key: String,
        /// The accepted spec's response-check mode (`"trace"` or
        /// `"signature"`), echoed so clients know which verdict
        /// semantics the artifact will carry.
        mode: String,
        /// Admission-time static-analysis diagnostics (empty when
        /// linting is off or found nothing; omitted from the wire form
        /// when empty).
        lint: Vec<obs::Diagnostic>,
    },
    /// A job's current, possibly non-terminal state.
    JobStatus {
        /// The queried job.
        job: u64,
        /// `queued` / `running` / `done` / `failed` / `cancelled`.
        state: String,
        /// Failure or cancellation detail, when there is one.
        detail: Option<String>,
    },
    /// A completed job's artifact.
    Artifact {
        /// The fetched job.
        job: u64,
        /// Whether the artifact came from the cache.
        cached: bool,
        /// The `RunArtifact` JSON object.
        artifact: JsonValue,
    },
    /// A metrics snapshot (`obs::Snapshot::to_json` shape).
    Metrics {
        /// Counters, gauges, histograms and spans.
        snapshot: JsonValue,
    },
    /// Generic success (cancel acknowledged, shutdown begun).
    Ok,
    /// A structured refusal; the daemon never silently drops a request.
    Error {
        /// One of [`codes`].
        code: String,
        /// Human-readable cause.
        message: String,
        /// Backpressure hint for [`codes::QUEUE_FULL`].
        retry_after_ms: Option<u64>,
    },
}

impl Response {
    /// Renders the response as its JSON wire object.
    pub fn to_json(&self) -> JsonValue {
        match self {
            Response::Submitted { job, cached, key, mode, lint } => {
                let mut v = JsonValue::object()
                    .push("reply", "submitted")
                    .push("job", *job)
                    .push("cached", *cached)
                    .push("key", key.as_str())
                    .push("mode", mode.as_str());
                if !lint.is_empty() {
                    v = v.push("lint", obs::diag::diagnostics_to_json(lint));
                }
                v
            }
            Response::JobStatus { job, state, detail } => {
                let mut v = JsonValue::object()
                    .push("reply", "status")
                    .push("job", *job)
                    .push("state", state.as_str());
                if let Some(d) = detail {
                    v = v.push("detail", d.as_str());
                }
                v
            }
            Response::Artifact { job, cached, artifact } => JsonValue::object()
                .push("reply", "artifact")
                .push("job", *job)
                .push("cached", *cached)
                .push("artifact", artifact.clone()),
            Response::Metrics { snapshot } => {
                JsonValue::object().push("reply", "metrics").push("snapshot", snapshot.clone())
            }
            Response::Ok => JsonValue::object().push("reply", "ok"),
            Response::Error { code, message, retry_after_ms } => {
                let mut v = JsonValue::object()
                    .push("reply", "error")
                    .push("code", code.as_str())
                    .push("message", message.as_str());
                if let Some(ms) = retry_after_ms {
                    v = v.push("retry_after_ms", *ms);
                }
                v
            }
        }
    }

    /// Parses a response from frame payload text.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] if the payload is not a well-formed response.
    pub fn parse(payload: &str) -> Result<Response, ProtoError> {
        let bad = |message: String| ProtoError { code: codes::BAD_FRAME, message };
        let v = JsonValue::parse(payload).map_err(|e| bad(e.to_string()))?;
        let reply = v
            .get("reply")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("response has no 'reply' field".into()))?;
        let job = |v: &JsonValue| {
            v.get("job")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| bad("response needs a numeric 'job' field".into()))
        };
        let text = |v: &JsonValue, name: &str| {
            v.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("response needs a '{name}' string")))
        };
        match reply {
            "submitted" => Ok(Response::Submitted {
                job: job(&v)?,
                cached: v.get("cached").and_then(JsonValue::as_bool).unwrap_or(false),
                key: text(&v, "key")?,
                mode: v.get("mode").and_then(JsonValue::as_str).unwrap_or("trace").to_string(),
                lint: match v.get("lint") {
                    Some(diags) => obs::diag::diagnostics_from_json(diags)
                        .ok_or_else(|| bad("submitted response with bad 'lint'".into()))?,
                    None => Vec::new(),
                },
            }),
            "status" => Ok(Response::JobStatus {
                job: job(&v)?,
                state: text(&v, "state")?,
                detail: v.get("detail").and_then(JsonValue::as_str).map(str::to_string),
            }),
            "artifact" => Ok(Response::Artifact {
                job: job(&v)?,
                cached: v.get("cached").and_then(JsonValue::as_bool).unwrap_or(false),
                artifact: v
                    .get("artifact")
                    .cloned()
                    .ok_or_else(|| bad("artifact response without 'artifact'".into()))?,
            }),
            "metrics" => Ok(Response::Metrics {
                snapshot: v
                    .get("snapshot")
                    .cloned()
                    .ok_or_else(|| bad("metrics response without 'snapshot'".into()))?,
            }),
            "ok" => Ok(Response::Ok),
            "error" => Ok(Response::Error {
                code: text(&v, "code")?,
                message: text(&v, "message")?,
                retry_after_ms: v.get("retry_after_ms").and_then(JsonValue::as_u64),
            }),
            other => Err(bad(format!("unknown reply '{other}'"))),
        }
    }
}

/// A protocol-level parse/validation failure, already carrying the
/// error code the daemon should answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// One of [`codes`].
    pub code: &'static str,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let all = [
            Request::Submit {
                spec: CampaignSpec::new("LP", "LFSR-D", 4096),
                deadline_ms: Some(5000),
            },
            Request::Submit {
                spec: CampaignSpec {
                    boundaries: Some(vec![16, 64]),
                    ..CampaignSpec::new("BP", "Mixed@2048", 128)
                },
                deadline_ms: None,
            },
            Request::Status { job: 7 },
            Request::Fetch { job: 7, wait_ms: 1500 },
            Request::Cancel { job: 7 },
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in all {
            let wire = req.to_json().to_json();
            assert_eq!(Request::parse(&wire).unwrap(), req, "{wire}");
        }
    }

    #[test]
    fn responses_round_trip_through_json() {
        let all = [
            Response::Submitted {
                job: 1,
                cached: true,
                key: "design=LP;...".into(),
                mode: "trace".into(),
                lint: vec![],
            },
            Response::Submitted {
                job: 3,
                cached: false,
                key: "design=LP;...".into(),
                mode: "signature".into(),
                lint: vec![obs::Diagnostic::new(
                    "L201",
                    obs::Severity::Error,
                    obs::Location::Bin { bin: 7, bins: 512 },
                    "spectral null over the passband",
                )],
            },
            Response::JobStatus { job: 1, state: "running".into(), detail: None },
            Response::JobStatus {
                job: 2,
                state: "failed".into(),
                detail: Some("filter design failed".into()),
            },
            Response::Artifact {
                job: 1,
                cached: false,
                artifact: JsonValue::object().push("schema", 1u64),
            },
            Response::Metrics { snapshot: JsonValue::object() },
            Response::Ok,
            Response::Error {
                code: codes::QUEUE_FULL.into(),
                message: "queue is full".into(),
                retry_after_ms: Some(250),
            },
        ];
        for resp in all {
            let wire = resp.to_json().to_json();
            assert_eq!(Response::parse(&wire).unwrap(), resp, "{wire}");
        }
    }

    #[test]
    fn malformed_requests_classify_frame_vs_request_errors() {
        // Unparseable JSON is a framing-level problem...
        let e = Request::parse("{nope").unwrap_err();
        assert_eq!(e.code, codes::BAD_FRAME);
        // ...well-formed JSON with bad content is a request problem.
        for payload in [
            "{}",
            "{\"op\":\"frobnicate\"}",
            "{\"op\":\"status\"}",
            "{\"op\":\"status\",\"job\":\"seven\"}",
            "{\"op\":\"submit\"}",
            "{\"op\":\"submit\",\"spec\":{\"design\":\"LP\"}}",
        ] {
            let e = Request::parse(payload).unwrap_err();
            assert_eq!(e.code, codes::BAD_REQUEST, "{payload}: {e}");
            assert!(!e.message.is_empty());
        }
    }

    #[test]
    fn empty_lint_is_omitted_from_the_wire_form() {
        // The daemon smoke test (and any line-oriented tooling) greps
        // the submitted reply; an unlinted daemon must produce exactly
        // the pre-lint wire bytes.
        let clean = Response::Submitted {
            job: 1,
            cached: false,
            key: "k".into(),
            mode: "trace".into(),
            lint: vec![],
        };
        assert!(!clean.to_json().to_json().contains("lint"));
    }

    #[test]
    fn submitted_without_mode_defaults_to_trace() {
        // Pre-compaction daemons never sent 'mode'; old wire captures
        // must still parse.
        let parsed = Response::parse("{\"reply\":\"submitted\",\"job\":4,\"key\":\"k\"}").unwrap();
        match parsed {
            Response::Submitted { mode, .. } => assert_eq!(mode, "trace"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_responses_are_errors_not_panics() {
        for payload in ["{nope", "{}", "{\"reply\":\"uhh\"}", "{\"reply\":\"artifact\",\"job\":1}"]
        {
            assert!(Response::parse(payload).is_err(), "{payload}");
        }
    }
}
