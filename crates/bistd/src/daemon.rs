//! The campaign daemon: accept loops, request dispatch, lifecycle.
//!
//! A [`Daemon`] listens on TCP (localhost) and/or a Unix domain
//! socket, speaks the framed protocol of [`crate::frame`] /
//! [`crate::proto`], and drives submitted campaigns through the
//! bounded queue and worker pool. Shutdown is graceful by
//! construction: the accept loops stop, the queue closes (refusing new
//! work while still draining everything queued), workers finish their
//! in-flight jobs, and the result cache spills to disk.
//!
//! Per-connection threads hold no daemon state beyond an `Arc` to
//! the daemon's shared internals, and every malformed input path answers with
//! a structured [`Response::Error`] — the daemon never panics or
//! silently drops a request it could still reply to.

use crate::cache::ResultCache;
use crate::frame::{self, FrameError};
use crate::jobs::{JobState, JobTable};
use crate::proto::{codes, Request, Response};
use crate::queue::{JobQueue, PushError};
use crate::worker;
use bist_core::campaign::CampaignSpec;
use faultsim::CancelToken;
use obs::Registry;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an accept loop sleeps between polls while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Upper bound on one `fetch` request's server-side wait, so a client
/// asking for "forever" still gets periodic status replies to keep the
/// connection visibly alive.
const MAX_FETCH_WAIT: Duration = Duration::from_secs(30);

/// What the daemon does with admission-time static analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintMode {
    /// No admission linting; submits behave exactly as before.
    Off,
    /// Lint every submit and attach the diagnostics to the reply and
    /// the job (they end up in the run artifact), but never refuse.
    #[default]
    Annotate,
    /// Like `Annotate`, but refuse submissions carrying an
    /// error-severity diagnostic with [`codes::LINT_REJECTED`].
    Reject,
}

impl LintMode {
    /// Parses the `--lint` flag value.
    pub fn parse(s: &str) -> Option<LintMode> {
        match s {
            "off" => Some(LintMode::Off),
            "annotate" => Some(LintMode::Annotate),
            "reject" => Some(LintMode::Reject),
            _ => None,
        }
    }
}

/// Everything configurable about a daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// TCP listen address (e.g. `127.0.0.1:0` for an ephemeral port);
    /// `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix domain socket path; `None` disables the Unix listener.
    pub unix: Option<PathBuf>,
    /// Worker threads executing campaigns (min 1).
    pub workers: usize,
    /// Job queue capacity; submits beyond it get `queue_full`.
    pub queue_capacity: usize,
    /// Result cache capacity, in artifacts.
    pub cache_capacity: usize,
    /// JSONL spill file: loaded at start, rewritten at shutdown.
    pub spill: Option<PathBuf>,
    /// Deadline applied to jobs that submit without one.
    pub default_deadline_ms: Option<u64>,
    /// Admission-time static-analysis policy.
    pub lint: LintMode,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            tcp: None,
            unix: None,
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            spill: None,
            default_deadline_ms: None,
            lint: LintMode::default(),
        }
    }
}

struct Shared {
    queue: Arc<JobQueue<u64>>,
    jobs: Arc<JobTable>,
    cache: Arc<Mutex<ResultCache>>,
    metrics: Arc<Registry>,
    shutdown: AtomicBool,
    default_deadline_ms: Option<u64>,
    lint: LintMode,
}

/// A running campaign daemon.
pub struct Daemon {
    shared: Arc<Shared>,
    accept_handles: Vec<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    spill: Option<PathBuf>,
}

impl Daemon {
    /// Binds the configured listeners, reloads the cache spill (if
    /// any), and spawns the worker pool and accept loops.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures; a config with no listener at
    /// all is [`io::ErrorKind::InvalidInput`].
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        if config.tcp.is_none() && config.unix.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "daemon config needs a tcp address or a unix socket path",
            ));
        }
        let metrics = Arc::new(Registry::new());
        let mut cache = ResultCache::new(config.cache_capacity);
        if let Some(path) = &config.spill {
            if let Ok(file) = std::fs::File::open(path) {
                let (loaded, skipped) = cache.load(BufReader::new(file));
                metrics.counter("bistd.cache.spill_loaded").add(loaded as u64);
                metrics.counter("bistd.cache.spill_skipped").add(skipped as u64);
            }
        }
        let shared = Arc::new(Shared {
            queue: Arc::new(JobQueue::new(config.queue_capacity)),
            jobs: Arc::new(JobTable::new()),
            cache: Arc::new(Mutex::new(cache)),
            metrics,
            shutdown: AtomicBool::new(false),
            default_deadline_ms: config.default_deadline_ms,
            lint: config.lint,
        });
        let worker_handles = worker::spawn_workers(
            config.workers,
            &shared.queue,
            &shared.jobs,
            &shared.cache,
            &shared.metrics,
        );

        let mut accept_handles = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr)?;
            tcp_addr = Some(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            let shared = Arc::clone(&shared);
            accept_handles.push(
                std::thread::Builder::new().name("bistd-accept-tcp".into()).spawn(move || {
                    accept_loop(
                        &shared,
                        || listener.accept().map(|(s, _)| s),
                        |s| {
                            s.set_nonblocking(false)?;
                            let reader = BufReader::new(s.try_clone()?);
                            Ok((
                                Box::new(reader) as Box<dyn BufRead + Send>,
                                Box::new(s) as Box<dyn Write + Send>,
                            ))
                        },
                    );
                })?,
            );
        }
        let mut unix_path = None;
        if let Some(path) = &config.unix {
            // A previous unclean exit may have left the socket file.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.clone());
            let shared = Arc::clone(&shared);
            accept_handles.push(
                std::thread::Builder::new().name("bistd-accept-unix".into()).spawn(move || {
                    accept_loop(
                        &shared,
                        || listener.accept().map(|(s, _)| s),
                        |s| {
                            s.set_nonblocking(false)?;
                            let reader = BufReader::new(s.try_clone()?);
                            Ok((
                                Box::new(reader) as Box<dyn BufRead + Send>,
                                Box::new(s) as Box<dyn Write + Send>,
                            ))
                        },
                    );
                })?,
            );
        }
        Ok(Daemon {
            shared,
            accept_handles,
            worker_handles,
            tcp_addr,
            unix_path,
            spill: config.spill,
        })
    }

    /// The bound TCP address (with the real port when the config asked
    /// for an ephemeral one).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path, if any.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// Initiates shutdown exactly as a `shutdown` request would: stop
    /// accepting, close the queue (which still drains).
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the daemon has fully drained: accept loops exited,
    /// all queued and in-flight jobs terminal, cache spilled. Returns
    /// once a `shutdown` request (or [`Daemon::begin_shutdown`])
    /// triggers the wind-down.
    ///
    /// # Errors
    ///
    /// Propagates spill-file I/O errors (the drain itself cannot fail).
    pub fn join(self) -> io::Result<()> {
        for handle in self.accept_handles {
            let _ = handle.join();
        }
        for handle in self.worker_handles {
            let _ = handle.join();
        }
        if let Some(path) = &self.spill {
            let mut file = io::BufWriter::new(std::fs::File::create(path)?);
            let spilled = self.shared.cache.lock().expect("cache lock").spill(&mut file)? as u64;
            self.shared.metrics.counter("bistd.cache.spilled").add(spilled);
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Polls `accept` until shutdown, spawning one detached handler thread
/// per connection. Handler threads die with their connection (or the
/// process); they are not joined, so an idle client cannot stall the
/// drain.
fn accept_loop<S>(
    shared: &Arc<Shared>,
    mut accept: impl FnMut() -> io::Result<S>,
    split: impl Fn(S) -> io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)>
        + Send
        + Copy
        + 'static,
) where
    S: Send + 'static,
{
    while !shared.shutdown.load(Ordering::Acquire) {
        match accept() {
            Ok(stream) => {
                shared.metrics.counter("bistd.connections").inc();
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new().name("bistd-conn".into()).spawn(
                    move || match split(stream) {
                        Ok((reader, writer)) => serve_connection(&conn_shared, reader, writer),
                        Err(_) => conn_shared.metrics.counter("bistd.connection_errors").inc(),
                    },
                );
                if spawned.is_err() {
                    shared.metrics.counter("bistd.connection_errors").inc();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// One connection's request loop. Framing errors get a best-effort
/// structured reply and close the connection (the stream can no longer
/// be trusted to re-synchronize); malformed payloads inside a valid
/// frame are answered and the connection keeps serving.
fn serve_connection(
    shared: &Arc<Shared>,
    mut reader: Box<dyn BufRead + Send>,
    mut writer: Box<dyn Write + Send>,
) {
    loop {
        match frame::read_frame(&mut reader) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                shared.metrics.counter("bistd.requests").inc();
                let response = match Request::parse(&payload) {
                    Ok(request) => shared.handle(request),
                    Err(e) => {
                        shared.metrics.counter("bistd.bad_requests").inc();
                        Response::Error {
                            code: e.code.into(),
                            message: e.message,
                            retry_after_ms: None,
                        }
                    }
                };
                if frame::write_frame(&mut writer, &response.to_json().to_json()).is_err() {
                    break;
                }
            }
            Err(error) => {
                shared.metrics.counter("bistd.frame_errors").inc();
                let code = match &error {
                    FrameError::UnsupportedVersion { .. } => codes::UNSUPPORTED_VERSION,
                    _ => codes::BAD_FRAME,
                };
                let reply = Response::Error {
                    code: code.into(),
                    message: error.to_string(),
                    retry_after_ms: None,
                };
                let _ = frame::write_frame(&mut writer, &reply.to_json().to_json());
                break;
            }
        }
    }
}

impl Shared {
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::AcqRel) {
            self.queue.close();
        }
    }

    fn handle(&self, request: Request) -> Response {
        match request {
            Request::Submit { spec, deadline_ms } => self.submit(spec, deadline_ms),
            Request::Status { job } => match self.jobs.get(job) {
                Some(record) => Response::JobStatus {
                    job,
                    state: record.state.name().into(),
                    detail: record.detail,
                },
                None => unknown_job(job),
            },
            Request::Fetch { job, wait_ms } => self.fetch(job, wait_ms),
            Request::Cancel { job } => {
                if self.jobs.cancel(job) {
                    self.metrics.counter("bistd.cancel_requests").inc();
                    Response::Ok
                } else {
                    unknown_job(job)
                }
            }
            Request::Metrics => {
                self.refresh_gauges();
                Response::Metrics { snapshot: self.metrics.snapshot().to_json() }
            }
            Request::Shutdown => {
                self.begin_shutdown();
                Response::Ok
            }
        }
    }

    fn submit(&self, spec: CampaignSpec, deadline_ms: Option<u64>) -> Response {
        if self.shutdown.load(Ordering::Acquire) {
            return Response::Error {
                code: codes::SHUTTING_DOWN.into(),
                message: "daemon is draining and accepts no new campaigns".into(),
                retry_after_ms: None,
            };
        }
        if let Err(e) = spec.validate() {
            self.metrics.counter("bistd.bad_requests").inc();
            return Response::Error {
                code: codes::BAD_REQUEST.into(),
                message: e.to_string(),
                retry_after_ms: None,
            };
        }
        // Admission-time static analysis: the cheap pairing and spec
        // passes, no fault-simulation cycle. `Annotate` attaches the
        // diagnostics; `Reject` additionally refuses on error severity.
        let effective_deadline = deadline_ms.or(self.default_deadline_ms);
        let lint = if self.lint == LintMode::Off {
            Vec::new()
        } else {
            match lint::admission_lint(&spec, effective_deadline) {
                Ok(diags) => diags,
                // `validate` passed, so this is a design-construction
                // failure the worker would also hit; refuse it here.
                Err(e) => {
                    self.metrics.counter("bistd.bad_requests").inc();
                    return Response::Error {
                        code: codes::BAD_REQUEST.into(),
                        message: e.to_string(),
                        retry_after_ms: None,
                    };
                }
            }
        };
        self.metrics.counter("bistd.lint.diagnostics").add(lint.len() as u64);
        if self.lint == LintMode::Reject {
            if let Some(first) = lint.iter().find(|d| d.severity == obs::Severity::Error) {
                self.metrics.counter("bistd.lint.rejections").inc();
                return Response::Error {
                    code: codes::LINT_REJECTED.into(),
                    message: format!("admission lint refused the campaign: {first}"),
                    retry_after_ms: None,
                };
            }
        }
        let key = spec.canonical();
        let mode = spec.mode.as_str().to_string();
        let hit = self.cache.lock().expect("cache lock").get(&key);
        if let Some(artifact) = hit {
            self.metrics.counter("bistd.cache.hits").inc();
            let job = self.jobs.create_done(spec, key.clone(), artifact);
            self.jobs.set_lint(job, lint.clone());
            return Response::Submitted { job, cached: true, key, mode, lint };
        }
        self.metrics.counter("bistd.cache.misses").inc();
        let mut token = CancelToken::new();
        if let Some(ms) = effective_deadline {
            token = token.with_deadline(Instant::now() + Duration::from_millis(ms));
        }
        let job = self.jobs.create(spec, key.clone(), token, JobState::Queued);
        self.jobs.set_lint(job, lint.clone());
        match self.queue.push(job) {
            Ok(()) => {
                self.metrics.counter("bistd.jobs_submitted").inc();
                Response::Submitted { job, cached: false, key, mode, lint }
            }
            Err(PushError::Full) => {
                self.jobs.finish(
                    job,
                    JobState::Failed,
                    Some("rejected: job queue full".into()),
                    None,
                );
                self.metrics.counter("bistd.queue_rejections").inc();
                // Heuristic backpressure hint: a slot frees when a
                // worker finishes, so scale the wait with the backlog.
                let backlog = self.queue.len() as u64;
                Response::Error {
                    code: codes::QUEUE_FULL.into(),
                    message: format!(
                        "job queue is at capacity ({}); retry later",
                        self.queue.capacity()
                    ),
                    retry_after_ms: Some(250 * (backlog + 1)),
                }
            }
            Err(PushError::Closed) => {
                self.jobs.finish(
                    job,
                    JobState::Failed,
                    Some("rejected: daemon shutting down".into()),
                    None,
                );
                Response::Error {
                    code: codes::SHUTTING_DOWN.into(),
                    message: "daemon is draining and accepts no new campaigns".into(),
                    retry_after_ms: None,
                }
            }
        }
    }

    fn fetch(&self, job: u64, wait_ms: u64) -> Response {
        let wait = Duration::from_millis(wait_ms).min(MAX_FETCH_WAIT);
        let Some(record) = self.jobs.wait_terminal(job, wait) else {
            return unknown_job(job);
        };
        match record.state {
            JobState::Done => Response::Artifact {
                job,
                cached: record.cached,
                artifact: record.artifact.unwrap_or(obs::JsonValue::Null),
            },
            JobState::Failed => Response::Error {
                code: codes::JOB_FAILED.into(),
                message: record.detail.unwrap_or_else(|| "job failed".into()),
                retry_after_ms: None,
            },
            JobState::Cancelled => Response::Error {
                code: codes::CANCELLED.into(),
                message: record.detail.unwrap_or_else(|| "job cancelled".into()),
                retry_after_ms: None,
            },
            state => Response::JobStatus { job, state: state.name().into(), detail: None },
        }
    }

    fn refresh_gauges(&self) {
        self.metrics.set_gauge("bistd.queue_depth", self.queue.len() as f64);
        self.metrics
            .set_gauge("bistd.cache.entries", self.cache.lock().expect("cache lock").len() as f64);
        for (state, count) in self.jobs.counts() {
            self.metrics.set_gauge(&format!("bistd.jobs.{state}"), count as f64);
        }
    }
}

fn unknown_job(job: u64) -> Response {
    Response::Error {
        code: codes::UNKNOWN_JOB.into(),
        message: format!("no job with id {job}"),
        retry_after_ms: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane_and_listenerless_start_is_rejected() {
        let config = DaemonConfig::default();
        assert!(config.workers >= 1);
        assert!(config.queue_capacity > 0);
        assert!(config.cache_capacity > 0);
        match Daemon::start(config) {
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidInput),
            Ok(_) => panic!("a daemon with no listeners must not start"),
        }
    }

    #[test]
    fn shutdown_is_idempotent() {
        let daemon = Daemon::start(DaemonConfig {
            tcp: Some("127.0.0.1:0".into()),
            ..DaemonConfig::default()
        })
        .unwrap();
        assert!(daemon.tcp_addr().is_some());
        daemon.begin_shutdown();
        daemon.begin_shutdown();
        daemon.join().unwrap();
    }
}
