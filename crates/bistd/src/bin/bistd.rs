//! The campaign service daemon binary.
//!
//! ```text
//! bistd --tcp 127.0.0.1:4817 --unix /tmp/bistd.sock \
//!       --workers 4 --queue-cap 32 --cache-cap 128 \
//!       --spill /tmp/bistd-cache.jsonl --deadline-ms 600000
//! ```
//!
//! Runs until a client sends `shutdown`, then drains in-flight jobs,
//! spills the result cache, and exits 0.

use bist_bistd::{Daemon, DaemonConfig, LintMode};
use std::io::Write as _;
use std::process::ExitCode;

const USAGE: &str = "usage: bistd [options]
  --tcp <host:port>     listen on TCP (e.g. 127.0.0.1:4817; port 0 = ephemeral)
  --unix <path>         listen on a Unix domain socket
  --workers <n>         worker threads (default 2)
  --queue-cap <n>       job queue capacity (default 16)
  --cache-cap <n>       result cache capacity in artifacts (default 64)
  --spill <path>        JSONL cache spill file (loaded at start, written at shutdown)
  --deadline-ms <ms>    default per-job deadline for submits without one
  --lint <mode>         admission-time static analysis: off, annotate
                        (default; diagnostics ride along with the job),
                        or reject (refuse on error-severity diagnostics)
at least one of --tcp / --unix is required";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("bistd: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let daemon = match Daemon::start(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("bistd: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = daemon.tcp_addr() {
        println!("bistd: listening on tcp {addr}");
    }
    if let Some(path) = daemon.unix_path() {
        println!("bistd: listening on unix {}", path.display());
    }
    println!("bistd: ready");
    let _ = std::io::stdout().flush();
    match daemon.join() {
        Ok(()) => {
            println!("bistd: drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bistd: shutdown incomplete: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig::default();
    let mut iter = args.iter();
    let value = |flag: &str, iter: &mut std::slice::Iter<String>| {
        iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--tcp" => config.tcp = Some(value(flag, &mut iter)?),
            "--unix" => config.unix = Some(value(flag, &mut iter)?.into()),
            "--workers" => config.workers = parse_num(flag, &value(flag, &mut iter)?)?,
            "--queue-cap" => config.queue_capacity = parse_num(flag, &value(flag, &mut iter)?)?,
            "--cache-cap" => config.cache_capacity = parse_num(flag, &value(flag, &mut iter)?)?,
            "--spill" => config.spill = Some(value(flag, &mut iter)?.into()),
            "--deadline-ms" => {
                config.default_deadline_ms = Some(parse_num::<u64>(flag, &value(flag, &mut iter)?)?)
            }
            "--lint" => {
                let mode = value(flag, &mut iter)?;
                config.lint = LintMode::parse(&mode)
                    .ok_or_else(|| format!("--lint: '{mode}' is not off/annotate/reject"))?
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if config.tcp.is_none() && config.unix.is_none() {
        return Err("need --tcp and/or --unix".into());
    }
    if config.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    Ok(config)
}

fn parse_num<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, String> {
    text.parse().map_err(|_| format!("{flag}: '{text}' is not a valid number"))
}
