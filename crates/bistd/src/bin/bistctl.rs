//! The campaign service control client.
//!
//! ```text
//! bistctl --server unix:/tmp/bistd.sock run --design LP --gen LFSR-D --vectors 4096
//! bistctl --server 127.0.0.1:4817 metrics
//! bistctl --server 127.0.0.1:4817 shutdown
//! ```
//!
//! `run` submits and waits, printing one JSON object
//! `{"job":…,"cached":…,"key":…,"artifact":{…}}` on stdout — the
//! `cached` field is what the CI smoke test asserts on. Admission-lint
//! diagnostics from the daemon are rendered human-readably on stderr
//! (one line per diagnostic plus a severity summary); stdout stays
//! pure machine JSON. All errors go to stderr with a non-zero exit:
//! 2 for usage problems (including an unknown `--design`/`--gen`,
//! reported with the known names), 1 for server/transport failures —
//! structured server refusals are unpacked into readable multi-line
//! output instead of a raw JSON dump.

use bist_bistd::{Client, ClientError, ServerAddr};
use bist_core::campaign::{CampaignSpec, KNOWN_DESIGNS, KNOWN_GENERATORS};
use bist_core::session::{ResponseCheck, SatConfig};
use bist_core::{SimEngine, TopOffConfig};
use obs::JsonValue;
use std::process::ExitCode;

const USAGE: &str = "usage: bistctl --server <addr> <command> [options]
  <addr> is host:port or unix:<path>
commands:
  run      --design <name> --gen <name> --vectors <n>
           [--misr <bits>] [--mode trace|signature] [--threads <n>]
           [--boundaries <c1,c2,...>] [--topoff <block>,<seeds>]
           [--sat <conflicts>[,noequiv]] [--collapse] [--engine kernel|walker]
           [--deadline-ms <ms>]
                                        submit and wait; prints result JSON
  submit   (same options as run)       submit without waiting; prints job JSON
  status   <job>                       print a job's state
  fetch    <job>                       wait for a job and print its artifact
  result   <job> [--residues] [--json] wait for a job and summarize its top-off
                                       and collapse outcome (--residues lists
                                       per-fault verdicts; --json prints the
                                       raw reports)
  cancel   <job>                       cancel a queued or running job
  metrics                              print the daemon's metric snapshot
  shutdown                             drain the daemon and stop it";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CtlError::Usage(message)) => {
            eprintln!("bistctl: {message}\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CtlError::Client(ClientError::Server { code, message, retry_after_ms })) => {
            // Unpack structured refusals into readable lines instead of
            // one raw "server error (...)" blob.
            eprintln!("bistctl: the daemon refused the request");
            eprintln!("  code: {code}");
            for line in message.lines() {
                eprintln!("  {line}");
            }
            if let Some(ms) = retry_after_ms {
                eprintln!("  retry after: {ms} ms");
            }
            ExitCode::FAILURE
        }
        Err(CtlError::Client(e)) => {
            eprintln!("bistctl: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Renders admission-lint diagnostics readably on stderr, keeping
/// stdout pure machine JSON for scripted consumers.
fn render_lint(diags: &[obs::Diagnostic]) {
    if diags.is_empty() {
        return;
    }
    let (errors, warns, infos) = obs::diag::severity_counts(diags);
    eprintln!("bistctl: admission lint: {errors} error(s), {warns} warning(s), {infos} info(s)");
    for d in diags {
        eprintln!("  {d}");
    }
}

enum CtlError {
    Usage(String),
    Client(ClientError),
}

impl From<ClientError> for CtlError {
    fn from(e: ClientError) -> Self {
        CtlError::Client(e)
    }
}

fn usage(message: impl Into<String>) -> CtlError {
    CtlError::Usage(message.into())
}

fn run(args: &[String]) -> Result<(), CtlError> {
    let mut iter = args.iter();
    let server = match (iter.next().map(String::as_str), iter.next()) {
        (Some("--server"), Some(addr)) => ServerAddr::parse(addr),
        _ => return Err(usage("expected --server <addr> first")),
    };
    let command = iter.next().ok_or_else(|| usage("missing command"))?;
    let rest: Vec<&String> = iter.collect();
    let connect = || Client::connect(&server).map_err(CtlError::Client);
    match command.as_str() {
        "run" => {
            let (spec, deadline_ms) = parse_spec(&rest)?;
            let result = connect()?.run_campaign(&spec, deadline_ms)?;
            render_lint(&result.lint);
            let mut line = JsonValue::object()
                .push("job", result.job)
                .push("cached", result.cached)
                .push("key", result.key.as_str())
                .push("mode", result.mode.as_str());
            if !result.lint.is_empty() {
                line = line.push("lint", obs::diag::diagnostics_to_json(&result.lint));
            }
            line = line.push("artifact", result.artifact);
            println!("{}", line.to_json());
        }
        "submit" => {
            let (spec, deadline_ms) = parse_spec(&rest)?;
            let submission = connect()?.submit(&spec, deadline_ms)?;
            render_lint(&submission.lint);
            let mut line = JsonValue::object()
                .push("job", submission.job)
                .push("cached", submission.cached)
                .push("key", submission.key.as_str())
                .push("mode", submission.mode.as_str());
            if !submission.lint.is_empty() {
                line = line.push("lint", obs::diag::diagnostics_to_json(&submission.lint));
            }
            println!("{}", line.to_json());
        }
        "status" => {
            let job = parse_job(&rest)?;
            let (state, detail) = connect()?.status(job)?;
            let mut line = JsonValue::object().push("job", job).push("state", state.as_str());
            if let Some(d) = detail {
                line = line.push("detail", d);
            }
            println!("{}", line.to_json());
        }
        "fetch" => {
            let job = parse_job(&rest)?;
            let (cached, artifact) = connect()?.fetch_artifact(job)?;
            let line = JsonValue::object()
                .push("job", job)
                .push("cached", cached)
                .push("artifact", artifact);
            println!("{}", line.to_json());
        }
        "result" => {
            let (job, residues, json) = parse_result_args(&rest)?;
            let (_, artifact) = connect()?.fetch_artifact(job)?;
            if json {
                // Either report key may be absent — from a run without
                // the stage, or from a pre-collapse daemon — and both
                // degrade to an explicit null instead of a parse error.
                let optional = |name: &str| match artifact.get(name) {
                    Some(t) => t.clone(),
                    None => JsonValue::Null,
                };
                println!(
                    "{}",
                    JsonValue::object()
                        .push("job", job)
                        .push("topoff", optional("topoff"))
                        .push("collapse", optional("collapse"))
                        .to_json()
                );
            } else {
                render_result(job, &artifact, residues);
            }
        }
        "cancel" => {
            let job = parse_job(&rest)?;
            connect()?.cancel(job)?;
            println!("{}", JsonValue::object().push("job", job).push("cancelled", true).to_json());
        }
        "metrics" => {
            let snapshot = connect()?.metrics()?;
            print!("{}", snapshot.to_json_pretty());
        }
        "shutdown" => {
            connect()?.shutdown()?;
            println!("{}", JsonValue::object().push("shutdown", true).to_json());
        }
        other => return Err(usage(format!("unknown command '{other}'"))),
    }
    Ok(())
}

fn parse_job(rest: &[&String]) -> Result<u64, CtlError> {
    match rest {
        [id] => id.parse().map_err(|_| usage(format!("'{id}' is not a job id"))),
        _ => Err(usage("expected exactly one job id")),
    }
}

/// Parses `result <job> [--residues] [--json]`.
fn parse_result_args(rest: &[&String]) -> Result<(u64, bool, bool), CtlError> {
    let (mut job, mut residues, mut json) = (None, false, false);
    for arg in rest {
        match arg.as_str() {
            "--residues" => residues = true,
            "--json" => json = true,
            id if job.is_none() => {
                job = Some(id.parse().map_err(|_| usage(format!("'{id}' is not a job id")))?);
            }
            other => return Err(usage(format!("unknown option '{other}'"))),
        }
    }
    Ok((job.ok_or_else(|| usage("result needs a job id"))?, residues, json))
}

/// Human-readable `result` rendering: the run's headline coverage line
/// plus the top-off verdict partition and plan storage, and (with
/// `--residues`) one line per residual fault with its site provenance.
fn render_result(job: u64, artifact: &JsonValue, residues: bool) {
    let text = |v: Option<&JsonValue>| v.and_then(JsonValue::as_str).unwrap_or("?").to_string();
    let count = |v: Option<&JsonValue>| v.and_then(JsonValue::as_u64).unwrap_or(0);
    let coverage = artifact.get("coverage").and_then(JsonValue::as_f64).unwrap_or(0.0);
    println!(
        "job {job}: {} on {}, coverage {:.2}% ({}/{}, {} missed)",
        text(artifact.get("generator")),
        text(artifact.get("design")),
        100.0 * coverage,
        count(artifact.get("detected")),
        count(artifact.get("total_faults")),
        count(artifact.get("missed")),
    );
    if let Some(collapse) = artifact.get("collapse") {
        let ratio = collapse.get("reduction_vs_raw").and_then(JsonValue::as_f64).unwrap_or(0.0);
        println!(
            "collapse: {} raw line(s) -> {} class(es) ({} prime, {:.1}% reduction), \
             {} machine(s) simulated",
            count(collapse.get("raw_lines")),
            count(collapse.get("classes_after")),
            count(collapse.get("prime_classes")),
            100.0 * ratio,
            count(collapse.get("classes_after")),
        );
    }
    if let Some(sat) = artifact.get("sat") {
        println!(
            "sat: {}/{} candidate(s) proven redundant (universe {} -> {}), \
             {} witness(es) confirmed, {} over budget",
            count(sat.get("redundant_proven")),
            count(sat.get("candidates")),
            count(sat.get("universe_before")),
            count(sat.get("universe_before")) - count(sat.get("redundant_proven")),
            count(sat.get("witnesses_confirmed")),
            count(sat.get("unknown")),
        );
        if sat.get("equiv_checked").and_then(JsonValue::as_bool).unwrap_or(false) {
            let proved = sat.get("equiv_proved").and_then(JsonValue::as_bool).unwrap_or(false);
            println!(
                "  equivalence: {} ({} lemma(s))",
                if proved { "proved" } else { "REFUTED" },
                count(sat.get("equiv_lemmas")),
            );
        }
    }
    let Some(top) = artifact.get("topoff") else {
        println!("no top-off report (submit with --topoff to enable the stage)");
        return;
    };
    let redundant = count(top.get("redundant"));
    let redundant_note =
        if redundant == 0 { String::new() } else { format!(", {redundant} redundant") };
    println!(
        "top-off: {} residual — {} detected, {} untestable{redundant_note}, {} unresolved",
        count(top.get("residue")),
        count(top.get("detected")),
        count(top.get("untestable")),
        count(top.get("unresolved")),
    );
    println!(
        "  plan: {} seed(s) ({} bits) + {} stored pattern(s) ({} bits), \
         {} top-off vectors (block {})",
        count(top.get("seeds")),
        count(top.get("seed_bits")),
        count(top.get("stored_patterns")),
        count(top.get("stored_bits")),
        count(top.get("total_vectors")),
        count(top.get("block_len")),
    );
    println!("  screened untestable before simulation: {}", count(top.get("screened_untestable")));
    if !residues {
        return;
    }
    let verdicts = top.get("verdicts").and_then(JsonValue::as_array);
    match verdicts {
        None => println!("residues: (none recorded)"),
        Some(list) => {
            println!("residues:");
            for v in list {
                let stuck = if v.get("stuck_one").and_then(JsonValue::as_bool).unwrap_or(false) {
                    1
                } else {
                    0
                };
                println!(
                    "  fault {:>5}  {}[cell {}] {} s-a-{stuck}  {}",
                    count(v.get("fault")),
                    text(v.get("node")),
                    count(v.get("cell")),
                    text(v.get("line")),
                    text(v.get("verdict")),
                );
            }
        }
    }
}

/// Builds a [`CampaignSpec`] from `run`/`submit` flags, validating it
/// locally so typos fail with the known names instead of a round trip.
fn parse_spec(rest: &[&String]) -> Result<(CampaignSpec, Option<u64>), CtlError> {
    let (mut design, mut generator, mut vectors, mut mode) = (None, None, None, None);
    let (mut misr, mut threads, mut boundaries, mut deadline_ms) = (None, None, None, None);
    let (mut topoff, mut sat) = (None, None);
    let mut collapse = false;
    let mut engine = None;
    let mut iter = rest.iter();
    while let Some(flag) = iter.next() {
        // Valueless switches come before the flag/value pairing.
        if flag.as_str() == "--collapse" {
            collapse = true;
            continue;
        }
        let value = iter.next().ok_or_else(|| usage(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--design" => design = Some(value.to_string()),
            "--gen" => generator = Some(value.to_string()),
            "--vectors" => vectors = Some(num(flag, value)?),
            "--misr" => misr = Some(num::<u32>(flag, value)?),
            "--mode" => {
                mode = Some(ResponseCheck::parse(value).ok_or_else(|| {
                    usage(format!("--mode: '{value}' is not 'trace' or 'signature'"))
                })?);
            }
            "--threads" => threads = Some(num(flag, value)?),
            "--engine" => {
                engine = Some(SimEngine::parse(value).ok_or_else(|| {
                    usage(format!("--engine: '{value}' is not 'kernel' or 'walker'"))
                })?);
            }
            "--deadline-ms" => deadline_ms = Some(num::<u64>(flag, value)?),
            "--boundaries" => {
                let cycles: Result<Vec<u32>, _> =
                    value.split(',').map(|c| num(flag, c.trim())).collect();
                boundaries = Some(cycles?);
            }
            "--sat" => {
                let (conflicts, equiv) = match value.split_once(',') {
                    None => (value.as_str(), true),
                    Some((c, "noequiv")) => (c, false),
                    Some((_, tail)) => {
                        return Err(usage(format!(
                            "--sat: '{tail}' is not 'noequiv' (expected \
                             <max_conflicts>[,noequiv])"
                        )));
                    }
                };
                sat = Some(SatConfig { max_conflicts: num(flag, conflicts.trim())?, equiv });
            }
            "--topoff" => {
                let parts: Vec<&str> = value.split(',').collect();
                let [block, seeds] = parts.as_slice() else {
                    return Err(usage(format!(
                        "--topoff: '{value}' is not <block_len>,<max_seeds>"
                    )));
                };
                topoff = Some(TopOffConfig {
                    block_len: num(flag, block.trim())?,
                    max_seeds: num(flag, seeds.trim())?,
                });
            }
            other => return Err(usage(format!("unknown option '{other}'"))),
        }
    }
    let design = design.ok_or_else(|| usage("--design is required"))?;
    let generator = generator.ok_or_else(|| usage("--gen is required"))?;
    let vectors = vectors.ok_or_else(|| usage("--vectors is required"))?;
    let mut spec = CampaignSpec::new(design, generator, vectors);
    if let Some(m) = misr {
        spec.misr_width = m;
    }
    if let Some(m) = mode {
        spec.mode = m;
    }
    if let Some(t) = threads {
        spec.threads = t;
    }
    spec.boundaries = boundaries;
    spec.topoff = topoff;
    spec.sat = sat;
    spec.collapse = collapse;
    if let Some(e) = engine {
        spec.engine = e;
    }
    spec.validate().map_err(|e| {
        usage(format!(
            "{e}\n  known designs: {}\n  known generators: {}, or Mixed@<n>",
            KNOWN_DESIGNS.join(", "),
            KNOWN_GENERATORS.join(", ")
        ))
    })?;
    Ok((spec, deadline_ms))
}

fn num<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, CtlError> {
    text.parse().map_err(|_| usage(format!("{flag}: '{text}' is not a valid number")))
}
