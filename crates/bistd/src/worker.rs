//! The worker pool: N threads draining the job queue through
//! `CampaignSpec::run_linted`, so admission-time diagnostics ride into
//! the run's artifact.
//!
//! Workers claim jobs through [`JobTable::claim`] (which atomically
//! loses races against cancellation), execute the campaign with the
//! job's [`faultsim::CancelToken`] attached — so `CancelJob` and deadlines take
//! effect at the fault simulator's next stage boundary — and publish
//! the outcome: artifact into the result cache and job table on
//! success, a classified terminal state otherwise. Per-stage latencies
//! from each artifact feed the daemon's histograms, which keeps the
//! long-lived registry bounded (no per-run span accumulation).

use crate::cache::ResultCache;
use crate::jobs::{JobState, JobTable};
use crate::queue::JobQueue;
use bist_core::SessionError;
use obs::Registry;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Spawns `count` worker threads. Each exits when the queue is closed
/// and drained; callers join the returned handles during shutdown.
pub fn spawn_workers(
    count: usize,
    queue: &Arc<JobQueue<u64>>,
    jobs: &Arc<JobTable>,
    cache: &Arc<Mutex<ResultCache>>,
    metrics: &Arc<Registry>,
) -> Vec<JoinHandle<()>> {
    (0..count.max(1))
        .map(|i| {
            let queue = Arc::clone(queue);
            let jobs = Arc::clone(jobs);
            let cache = Arc::clone(cache);
            let metrics = Arc::clone(metrics);
            std::thread::Builder::new()
                .name(format!("bistd-worker-{i}"))
                .spawn(move || {
                    while let Some(id) = queue.pop() {
                        run_one(id, &jobs, &cache, &metrics);
                    }
                })
                .expect("spawn worker thread")
        })
        .collect()
}

fn run_one(id: u64, jobs: &JobTable, cache: &Mutex<ResultCache>, metrics: &Registry) {
    let Some((spec, token, lint)) = jobs.claim(id) else {
        // Cancelled between submit and claim; `claim` already recorded
        // the terminal state.
        metrics.counter("bistd.jobs_cancelled").inc();
        return;
    };
    let started = Instant::now();
    match spec.run_linted(Some(token), lint) {
        Ok(run) => {
            let artifact = run.artifact.to_json();
            cache.lock().expect("cache lock").insert(&spec.canonical(), artifact.clone());
            jobs.finish(id, JobState::Done, None, Some(artifact));
            metrics.counter("bistd.jobs_completed").inc();
            metrics.histogram("bistd.job_ms").record(started.elapsed().as_secs_f64() * 1000.0);
            for stage in &run.artifact.stages {
                metrics.histogram(&format!("bistd.stage.{}", stage.name)).record(stage.millis);
            }
        }
        Err(SessionError::Cancelled { deadline_exceeded }) => {
            let detail =
                if deadline_exceeded { "deadline exceeded" } else { "cancelled by request" };
            jobs.finish(id, JobState::Cancelled, Some(detail.into()), None);
            metrics.counter("bistd.jobs_cancelled").inc();
            if deadline_exceeded {
                metrics.counter("bistd.deadlines_exceeded").inc();
            }
        }
        Err(err) => {
            jobs.finish(id, JobState::Failed, Some(err.to_string()), None);
            metrics.counter("bistd.jobs_failed").inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_core::campaign::CampaignSpec;
    use faultsim::CancelToken;

    struct Harness {
        queue: Arc<JobQueue<u64>>,
        jobs: Arc<JobTable>,
        cache: Arc<Mutex<ResultCache>>,
        metrics: Arc<Registry>,
        handles: Vec<JoinHandle<()>>,
    }

    fn harness(workers: usize) -> Harness {
        let queue = Arc::new(JobQueue::new(16));
        let jobs = Arc::new(JobTable::new());
        let cache = Arc::new(Mutex::new(ResultCache::new(16)));
        let metrics = Arc::new(Registry::new());
        let handles = spawn_workers(workers, &queue, &jobs, &cache, &metrics);
        Harness { queue, jobs, cache, metrics, handles }
    }

    fn mini_spec(vectors: usize) -> CampaignSpec {
        CampaignSpec { threads: 1, ..CampaignSpec::new("LP-MINI", "LFSR-D", vectors) }
    }

    #[test]
    fn workers_complete_jobs_and_populate_the_cache() {
        let Harness { queue, jobs, cache, metrics, handles } = harness(2);
        let spec = mini_spec(32);
        let id = jobs.create(spec.clone(), spec.canonical(), CancelToken::new(), JobState::Queued);
        queue.push(id).unwrap();
        let record = jobs.wait_terminal(id, std::time::Duration::from_secs(120)).unwrap();
        assert_eq!(record.state, JobState::Done, "{:?}", record.detail);
        assert!(record.artifact.is_some());
        assert_eq!(
            cache.lock().unwrap().get(&spec.canonical()).map(|a| a.to_json()),
            record.artifact.map(|a| a.to_json()),
            "cache holds the same artifact bytes"
        );
        queue.close();
        for h in handles {
            h.join().unwrap();
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.counters["bistd.jobs_completed"], 1);
        assert!(snap.histograms.contains_key("bistd.stage.session.fault_sim"));
        assert_eq!(snap.spans.len(), 0, "daemon registry stays span-free");
    }

    #[test]
    fn failures_and_cancellations_are_classified() {
        let Harness { queue, jobs, metrics, handles, .. } = harness(1);
        // A spec that validates at submit time but fails in the run
        // (MISR width without a tabulated polynomial).
        let bad = CampaignSpec { misr_width: 63, ..mini_spec(16) };
        let failed =
            jobs.create(bad.clone(), bad.canonical(), CancelToken::new(), JobState::Queued);
        queue.push(failed).unwrap();
        // A job whose token fires before any worker claims it.
        let token = CancelToken::new();
        let spec = mini_spec(16);
        let cancelled =
            jobs.create(spec.clone(), spec.canonical(), token.clone(), JobState::Queued);
        token.cancel();
        queue.push(cancelled).unwrap();

        let record = jobs.wait_terminal(failed, std::time::Duration::from_secs(120)).unwrap();
        assert_eq!(record.state, JobState::Failed);
        assert!(record.detail.unwrap().contains("test-pattern"), "carries the cause");
        let record = jobs.wait_terminal(cancelled, std::time::Duration::from_secs(120)).unwrap();
        assert_eq!(record.state, JobState::Cancelled);

        queue.close();
        for h in handles {
            h.join().unwrap();
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.counters["bistd.jobs_failed"], 1);
        assert_eq!(snap.counters["bistd.jobs_cancelled"], 1);
    }
}
