//! Bit-sliced netlist simulation throughput: cycles/second on the
//! paper's LP design (the inner loop of every fault-simulation
//! experiment), plus design elaboration cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rtl::sim::BitSlicedSim;
use std::hint::black_box;

fn bench_step(c: &mut Criterion) {
    let design = filters::designs::lowpass().expect("LP elaborates");
    let netlist = design.netlist();
    let mut gen = bist_bench::generator("LFSR-D");
    let inputs: Vec<i64> = (0..256).map(|_| design.align_input(gen.next_word())).collect();

    let mut group = c.benchmark_group("rtl_sim");
    group.throughput(Throughput::Elements(inputs.len() as u64));
    group.bench_function("lp_256_cycles_64_lanes", |b| {
        b.iter(|| {
            let mut sim = BitSlicedSim::new(netlist);
            for &x in &inputs {
                sim.step(x);
            }
            black_box(sim.lane_value(design.output(), 0))
        })
    });
    group.finish();
}

fn bench_elaboration(c: &mut Criterion) {
    c.bench_function("elaborate_lp_design", |b| {
        b.iter(|| black_box(filters::designs::lowpass().expect("LP elaborates")))
    });
}

fn bench_range_analysis(c: &mut Criterion) {
    let design = filters::designs::lowpass().expect("LP elaborates");
    c.bench_function("range_analysis_lp", |b| {
        b.iter(|| {
            black_box(rtl::range::RangeAnalysis::analyze(
                design.netlist(),
                rtl::range::aligned_input_range(12, 16),
            ))
        })
    });
}

fn bench_reachability(c: &mut Criterion) {
    let design = filters::designs::lowpass().expect("LP elaborates");
    c.bench_function("reachability_lp_4096_inputs", |b| {
        b.iter(|| black_box(rtl::reachability::Reachability::analyze(design.netlist(), 12)))
    });
}

criterion_group!(benches, bench_step, bench_elaboration, bench_range_analysis, bench_reachability);
criterion_main!(benches);
