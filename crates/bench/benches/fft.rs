//! FFT throughput: the kernel behind the generator spectra (paper
//! Fig. 4) and the compatibility metric (Table 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsp::{fft, Complex};
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("radix2", n), &data, |b, data| {
            b.iter(|| {
                let mut buf = data.clone();
                fft::fft(&mut buf).expect("power of two");
                black_box(buf)
            })
        });
    }
    group.finish();
}

fn bench_welch(c: &mut Criterion) {
    let x: Vec<f64> = (0..16384).map(|i| ((i * i) as f64 * 0.001).sin()).collect();
    c.bench_function("welch_16k_seg512", |b| {
        b.iter(|| {
            black_box(dsp::spectrum::welch(&x, 512, dsp::window::Window::Hann).expect("valid"))
        })
    });
}

criterion_group!(benches, bench_fft, bench_welch);
criterion_main!(benches);
