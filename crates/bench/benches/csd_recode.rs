//! CSD recoding and digit-budgeted quantization throughput (the
//! coefficient-preparation step of every filter design).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_recode(c: &mut Criterion) {
    let values: Vec<i64> = (0..1024).map(|i| (i * 2654435761u64 as i64) % 32768 - 16384).collect();
    let mut group = c.benchmark_group("csd");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("exact_recode_1024", |b| {
        b.iter(|| {
            let mut digits = 0usize;
            for &v in &values {
                digits += csd::Csd::from_integer(v).nonzero_digits();
            }
            black_box(digits)
        })
    });
    group.bench_function("quantize_budget4_1024", |b| {
        b.iter(|| {
            let mut err = 0.0f64;
            for (i, _) in values.iter().enumerate() {
                let t = (i as f64 / 1024.0) - 0.5;
                err += csd::quantize(t, 15, 4).error.abs();
            }
            black_box(err)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_recode);
criterion_main!(benches);
