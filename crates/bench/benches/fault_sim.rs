//! Parallel fault-simulation throughput: the engine behind the paper's
//! Tables 4–6 and Figs. 10–13. Uses a reduced design and test length so
//! a bench iteration stays under a second.
//!
//! The `fault_sim_threads` group measures the sharded simulator at 1,
//! 2 and 4 worker threads on the same run; set `BIST_THREADS` when
//! invoking the `experiments` binary to apply the same control there.

use bist_core::session::{BistSession, RunConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dsp::firdesign::BandKind;
use filters::{FilterDesign, FilterSpec};
use std::hint::black_box;

fn small_design() -> FilterDesign {
    FilterDesign::elaborate(FilterSpec {
        name: "bench".into(),
        band: BandKind::Lowpass { cutoff: 0.1 },
        taps: 20,
        input_bits: 12,
        coef_frac_bits: 14,
        max_csd_digits: 4,
        width: 16,
        kaiser_beta: 5.0,
    })
    .expect("bench design elaborates")
}

fn bench_universe(c: &mut Criterion) {
    let design = small_design();
    c.bench_function("enumerate_universe_20tap", |b| {
        b.iter(|| black_box(BistSession::new(&design).expect("session").universe().len()))
    });
}

fn bench_run(c: &mut Criterion) {
    let design = small_design();
    let session = BistSession::new(&design).expect("session");
    let faults = session.universe().len() as u64;
    let config = RunConfig::new(256).with_threads(1);
    let mut group = c.benchmark_group("fault_sim");
    group.sample_size(10);
    group.throughput(Throughput::Elements(faults));
    group.bench_function("20tap_256_vectors", |b| {
        b.iter(|| {
            let mut gen = bist_bench::generator("LFSR-D");
            black_box(session.run(&mut *gen, &config).expect("run").missed())
        })
    });
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    let design = small_design();
    let session = BistSession::new(&design).expect("session");
    let faults = session.universe().len() as u64;
    let mut group = c.benchmark_group("fault_sim_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements(faults));
    for threads in [1usize, 2, 4] {
        let config = RunConfig::new(512).with_threads(threads);
        group.bench_function(format!("20tap_512_vectors_t{threads}"), |b| {
            b.iter(|| {
                let mut gen = bist_bench::generator("LFSR-D");
                black_box(session.run(&mut *gen, &config).expect("run").missed())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_universe, bench_run, bench_threads);
criterion_main!(benches);
