//! Parallel fault-simulation throughput: the engine behind the paper's
//! Tables 4–6 and Figs. 10–13. Uses a reduced design and test length so
//! a bench iteration stays under a second.

use bist_core::session::BistSession;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dsp::firdesign::BandKind;
use filters::{FilterDesign, FilterSpec};
use std::hint::black_box;

fn small_design() -> FilterDesign {
    FilterDesign::elaborate(FilterSpec {
        name: "bench".into(),
        band: BandKind::Lowpass { cutoff: 0.1 },
        taps: 20,
        input_bits: 12,
        coef_frac_bits: 14,
        max_csd_digits: 4,
        width: 16,
        kaiser_beta: 5.0,
    })
    .expect("bench design elaborates")
}

fn bench_universe(c: &mut Criterion) {
    let design = small_design();
    c.bench_function("enumerate_universe_20tap", |b| {
        b.iter(|| black_box(BistSession::new(&design).universe().len()))
    });
}

fn bench_run(c: &mut Criterion) {
    let design = small_design();
    let session = BistSession::new(&design);
    let faults = session.universe().len() as u64;
    let mut group = c.benchmark_group("fault_sim");
    group.sample_size(10);
    group.throughput(Throughput::Elements(faults));
    group.bench_function("20tap_256_vectors", |b| {
        b.iter(|| {
            let mut gen = bist_bench::generator("LFSR-D");
            black_box(session.run(&mut *gen, 256).missed())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_universe, bench_run);
criterion_main!(benches);
