//! Test-pattern generator throughput (words per second) for each
//! scheme of the paper's Section 6.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tpg::TestGenerator;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    const N: usize = 4096;
    group.throughput(Throughput::Elements(N as u64));
    for name in ["LFSR-1", "LFSR-2", "LFSR-D", "LFSR-M", "Ramp", "Ideal"] {
        group.bench_function(name, |b| {
            let mut gen = bist_bench::generator(name);
            b.iter(|| {
                gen.reset();
                let mut acc = 0i64;
                for _ in 0..N {
                    acc = acc.wrapping_add(gen.next_word());
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_analytic_spectra(c: &mut Criterion) {
    c.bench_function("lfsr1_analytic_spectrum_256", |b| {
        b.iter(|| black_box(tpg::spectra::lfsr1(12, 256)))
    });
    let lfsr2 = tpg::Lfsr2::new(12, tpg::polynomials::PAPER_TYPE2_POLY).expect("paper poly");
    c.bench_function("lfsr2_exact_spectrum_256", |b| {
        b.iter(|| black_box(tpg::spectra::lfsr2(&lfsr2, 256)))
    });
}

criterion_group!(benches, bench_generators, bench_analytic_spectra);
criterion_main!(benches);
