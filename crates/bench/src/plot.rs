//! ASCII line plots for the figure-reproducing experiments.

/// Renders one or more named series as an ASCII plot of `height` rows.
/// Each series is drawn with its own glyph; x positions are the sample
/// indices scaled to `width` columns.
///
/// # Example
///
/// ```
/// let y: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
/// let p = bist_bench::plot::ascii(&[("sine", &y)], 60, 12);
/// assert!(p.contains('*'));
/// ```
pub fn ascii(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, y) in series {
        for &v in *y {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return String::from("(no data)\n");
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (s_idx, (_, y)) in series.iter().enumerate() {
        let glyph = GLYPHS[s_idx % GLYPHS.len()];
        let n = y.len();
        if n == 0 {
            continue;
        }
        for (i, &v) in y.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let col = if n == 1 { 0 } else { i * (width - 1) / (n - 1) };
            let frac = (v - lo) / (hi - lo);
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{hi:12.4} ┤\n"));
    for row in grid {
        out.push_str("             │");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("{lo:12.4} ┤"));
    out.push_str(&"─".repeat(width));
    out.push('\n');
    let mut legend = String::from("              ");
    for (i, (name, _)) in series.iter().enumerate() {
        legend.push_str(&format!("{} {}   ", GLYPHS[i % GLYPHS.len()], name));
    }
    out.push_str(&legend);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_multiple_series_with_distinct_glyphs() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 50.0 - i as f64).collect();
        let p = ascii(&[("up", &a), ("down", &b)], 40, 10);
        assert!(p.contains('*'));
        assert!(p.contains('+'));
        assert!(p.contains("up"));
        assert!(p.contains("down"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let y = vec![3.0; 10];
        let p = ascii(&[("flat", &y)], 20, 5);
        assert!(p.contains('*'));
    }

    #[test]
    fn empty_series_is_handled() {
        let p = ascii(&[("none", &[][..])], 20, 5);
        assert!(p.contains("no data") || p.contains('│'));
    }

    #[test]
    fn nan_values_are_skipped() {
        let y = vec![1.0, f64::NAN, 2.0];
        let p = ascii(&[("y", &y)], 20, 5);
        assert!(p.contains('*'));
    }
}
