//! Regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--json <path>] [--server <addr>] [--signature] <subcommand>
//!     table1   design statistics                     (paper Table 1)
//!     table2   difficult test classes                (paper Table 2)
//!     table3   generator/filter compatibility        (paper Table 3)
//!     table4   missed faults @ 4k + normalized       (paper Tables 4, 5)
//!     table6   mixed LFSR-1/LFSR-M test @ 8k         (paper Table 6)
//!     fig1     test zones on a tap amplitude PDF     (paper Fig. 1)
//!     fig2     injected-fault sine response          (paper Figs. 2, 3)
//!     fig4     generator power spectra               (paper Fig. 4)
//!     fig5     LFSR-1 waveform segment               (paper Fig. 5)
//!     fig6     tap-20 signals, LFSR-1 vs LFSR-D      (paper Figs. 6, 7)
//!     fig8     tap-20 distributions, theory vs sim   (paper Figs. 8, 9)
//!     fig10    coverage curves, 4 gens x 3 designs   (paper Figs. 10-12)
//!     fig13    mixed-mode coverage curve             (paper Fig. 13)
//!     severity missed-fault triage under a sine      (Section 5, quantified)
//!     extensions  larger LFSRs + tuned phase         (Conclusion items)
//!     scaling  aggressive-scaling trade-off          (Conclusion item)
//!     ablation pruning stages & drop schedules       (engine study)
//!     csa      ripple vs carry-save vs symmetric     (Section 3)
//!     bench5   trace vs signature checking           (compaction study)
//!     bench7   top-off seed storage vs misses        (reseeding study)
//!     bench8   SAT proof-pruning before/after        (redundancy study)
//!     bench9   structural collapse before/after      (collapsing study)
//!     bench10  walker vs kernel engine before/after  (SoA kernel study)
//!     smoke    signature-mode zero-aliasing gate     (CI tier 1)
//!     structure collapse bit-identity census gate    (CI tier 1)
//!     kernel   walker-vs-kernel bit-identity gate    (CI tier 1)
//!     atpg     deterministic top-off coverage gate   (CI tier 1)
//!     sat      equivalence + redundancy proof gate   (CI tier 1)
//!     all      everything above
//!
//! With `--json <path>`, every BIST run's structured artifact
//! (coverage, missed-fault census by difficult-test class, per-stage
//! durations, engine counters) is aggregated into one `BENCH_*.json`
//! document at exit; a directory path gets the canonical
//! `BENCH_<subcommand>.json` name inside it. Schema in EXPERIMENTS.md.
//!
//! With `--server <addr>` (host:port or unix:<path>), the Section 8
//! fault-simulation grid — `table4` and `table6` — is farmed out to a
//! running `bistd` daemon instead of simulating inline, so repeated
//! sweeps hit its result cache. Other subcommands, and the `--json`
//! artifact log, still run locally.
//!
//! With `--signature`, the Section 8 grid (`table4`, `table6`) checks
//! responses through the 16-bit MISR instead of the direct trace
//! compare, and the tables grow an aliased-fault column (expected all
//! zero — see DESIGN.md §10). `bench5` always runs both modes and
//! emits the trace-vs-signature memory/throughput comparison
//! (`BENCH_5.json` with `--json`); `smoke` is the CI cell: it exits
//! non-zero unless signature-mode verdicts match trace-mode verdicts
//! with zero aliasing across the gated roster.
//! ```

use bist_bench::{
    cell_lint, cell_lint_mode, generator, lint_tally, mixed_generator, paper_designs, plot,
    run_config, run_config_mode, run_session, table, SECTION8_GENERATORS,
};
use bist_core::campaign::CampaignSpec;
use bist_core::session::{BistSession, ResponseCheck};
use bist_core::{compat, distribution, variance, zones, SimEngine};
use bistd::{Client, ServerAddr};
use dsp::stats::Summary;
use filters::FilterDesign;
use rtl::range::{aligned_input_range, RangeAnalysis};
use tpg::{collect_values, TestGenerator};

/// Vectors per Section 8 run (the paper's Table 4 test length).
const SECTION8_VECTORS: usize = 4096;

fn main() {
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut server: Option<ServerAddr> = None;
    let mut subcommand: Option<String> = None;
    let mut mode = ResponseCheck::Trace;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let Some(path) = args.next() else {
                eprintln!("--json needs a path argument");
                std::process::exit(2);
            };
            json_path = Some(path.into());
        } else if a == "--server" {
            let Some(addr) = args.next() else {
                eprintln!("--server needs an address argument (host:port or unix:<path>)");
                std::process::exit(2);
            };
            server = Some(ServerAddr::parse(&addr));
        } else if a == "--signature" {
            mode = ResponseCheck::Signature;
        } else if subcommand.is_none() {
            subcommand = Some(a);
        } else {
            eprintln!("unexpected extra argument '{a}'; see source header for usage");
            std::process::exit(2);
        }
    }
    let arg = subcommand.unwrap_or_else(|| "all".to_string());
    let all = arg == "all";
    let mut ran = false;
    let mut run = |name: &str, f: &dyn Fn()| {
        if all || arg == name {
            f();
            ran = true;
        }
    };
    run("table1", &table1);
    run("table2", &table2);
    run("table3", &table3);
    run("table4", &|| table4(server.as_ref(), mode));
    run("table6", &|| table6(server.as_ref(), mode));
    run("fig1", &fig1);
    run("fig2", &fig2);
    run("fig4", &fig4);
    run("fig5", &fig5);
    run("fig6", &fig6);
    run("fig8", &fig8);
    run("fig10", &fig10);
    run("fig13", &fig13);
    run("severity", &severity);
    run("extensions", &extensions);
    run("scaling", &scaling);
    run("ablation", &ablation);
    run("csa", &csa);
    run("bench5", &bench5);
    run("bench7", &bench7);
    run("bench8", &bench8);
    run("bench9", &bench9);
    run("bench10", &bench10);
    run("smoke", &smoke);
    run("structure", &structure_smoke);
    run("kernel", &kernel_smoke);
    run("atpg", &atpg_smoke);
    run("sat", &sat_smoke);
    if !ran {
        eprintln!("unknown experiment '{arg}'; see source header for the list");
        std::process::exit(2);
    }
    if let Some(path) = json_path {
        // The numbered studies' artifacts are `BENCH_5.json` (the
        // compaction study), `BENCH_6.json` (the paper's Table 6
        // mixed-mode grid) and `BENCH_7.json` (the top-off study) —
        // see EXPERIMENTS.md — not `BENCH_bench5.json`.
        let tag = match arg.as_str() {
            "bench5" => "5",
            "table6" => "6",
            "bench7" => "7",
            "bench8" => "8",
            "bench9" => "9",
            "bench10" => "10",
            other => other,
        };
        match bist_bench::artifacts::write_bench_json(tag, &path) {
            Ok(written) => {
                let runs = bist_bench::artifacts::collected().len();
                eprintln!("wrote {} ({runs} run artifacts)", written.display());
            }
            Err(e) => {
                eprintln!("failed to write bench artifact to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

fn banner(title: &str) {
    println!("\n==== {title} ====\n");
}

// ---------------------------------------------------------------- Table 1

fn table1() {
    banner("Table 1: design statistics (paper: LP 183/60, BP 161/58, HP 175/60 adders/regs)");
    let rows: Vec<Vec<String>> = paper_designs()
        .iter()
        .map(|d| {
            let s = d.netlist().stats();
            let session = BistSession::new(d).expect("session");
            vec![
                d.name().to_string(),
                s.arithmetic().to_string(),
                s.registers.to_string(),
                d.spec().input_bits.to_string(),
                d.spec().coef_frac_bits.to_string(),
                s.width.to_string(),
                session.universe().uncollapsed_len().to_string(),
                session.universe().len().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["design", "adders", "regs", "in", "coef.", "out", "faults", "collapsed"],
            &rows
        )
    );
}

// ---------------------------------------------------------------- Table 2

fn table2() {
    banner("Table 2: difficult test classes at the next-to-MSB cell");
    let mut rows = Vec::new();
    for t in zones::DifficultTest::all() {
        let conds = zones::io_conditions(t);
        for (i, c) in conds.iter().enumerate() {
            let class = if i == 0 { "a" } else { "b" };
            let a_range = format!(
                "{} <= A < {}",
                c.a_min.map_or("-1".into(), |v| format!("{v}")),
                c.a_max.map_or("1".into(), |v| format!("{v}"))
            );
            let out = match (c.sum_min, c.sum_max) {
                (Some(lo), None) => format!("A+B >= {lo}"),
                (None, Some(hi)) => format!("A+B < {hi}"),
                _ => "-".into(),
            };
            rows.push(vec![
                format!("{t}{class}"),
                a_range,
                format!("{out}{}", if c.overflow { " (ovf)" } else { "" }),
            ]);
        }
    }
    println!("{}", table::render(&["Test", "Input", "Output"], &rows));

    let confined = zones::classes_confined_to_difficult_tests();
    println!(
        "gate-level cross-check: {} of {} collapsed cell fault classes are detectable \
         ONLY by difficult tests (T1/T2/T5/T6)",
        confined.len(),
        rtl::fulladder::fault_classes(None).len()
    );
}

// ---------------------------------------------------------------- Table 3

fn table3() {
    banner("Table 3: frequency-domain compatibility (paper: rows LFSR-1 -/±/+, LFSR-2 ±/±/+, LFSR-D +/+/+, LFSR-M +/+/+, Ramp +/-/-)");
    let gens = compat::paper_generator_spectra(1024);
    let table3 = compat::type_compatibility_table(&gens);
    let rows: Vec<Vec<String>> = table3
        .iter()
        .map(|(name, ratings)| {
            let mut row = vec![name.clone()];
            row.extend(ratings.iter().map(|r| r.to_string()));
            row
        })
        .collect();
    println!("{}", table::render(&["", "Lowpass", "Bandpass", "Highpass"], &rows));
    println!("per-design ratios against an ideal white generator of equal variance:");
    let designs = paper_designs();
    let reference = tpg::spectra::flat(1.0 / 3.0, 1024);
    for g in &gens {
        print!("  {:7}:", g.name);
        for d in &designs {
            print!(
                " {}={:.4}",
                d.name(),
                compat::compatibility_ratio(&g.spectrum, &reference, &d.coefficients())
            );
        }
        println!();
    }
    println!("static lint per cell (errors/warnings/infos, no simulation):");
    let lint_rows: Vec<Vec<String>> = gens
        .iter()
        .map(|g| {
            let mut row = vec![g.name.clone()];
            row.extend(designs.iter().map(|d| cell_lint(d, &g.name, SECTION8_VECTORS)));
            row
        })
        .collect();
    println!("{}", table::render(&["", "Lowpass", "Bandpass", "Highpass"], &lint_rows));
}

// ------------------------------------------------------------ Tables 4, 5

/// Missed- and aliased-fault counts for one grid cell, farmed out to a
/// `bistd` daemon. Normalization and table layout stay local:
/// everything the tables need beyond these counts is derivable from
/// the design.
fn remote_cell(
    server: &ServerAddr,
    design: &str,
    gen_name: &str,
    vectors: usize,
    mode: ResponseCheck,
) -> (usize, usize) {
    let run = Client::connect(server)
        .and_then(|mut client| {
            let mut spec = CampaignSpec::new(design, gen_name, vectors).with_mode(mode);
            spec.threads = std::env::var("BIST_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(0);
            client.run_campaign(&spec, None)
        })
        .unwrap_or_else(|e| {
            eprintln!("--server {server}: {design}/{gen_name} failed: {e}");
            std::process::exit(1);
        });
    let count = |field: &str| {
        run.artifact
            .get(field)
            .and_then(obs::JsonValue::as_u64)
            .unwrap_or_else(|| panic!("campaign artifacts report '{field}'")) as usize
    };
    (count("missed"), count("aliased"))
}

fn table4(server: Option<&ServerAddr>, mode: ResponseCheck) {
    banner("Tables 4 & 5: missed faults after 4k vectors (paper Table 4) and normalized by adder count (paper Table 5)");
    let designs = paper_designs();
    let mut rows4 = Vec::new();
    let mut rows5 = Vec::new();
    let mut rows_aliased = Vec::new();
    for d in &designs {
        let session = server.is_none().then(|| BistSession::new(d).expect("session"));
        let adders = d.netlist().stats().arithmetic() as f64;
        let mut row4 = vec![d.name().to_string()];
        let mut row5 = vec![d.name().to_string()];
        let mut row_aliased = vec![d.name().to_string()];
        for name in SECTION8_GENERATORS {
            let (missed, aliased) = match (server, &session) {
                (Some(addr), _) => remote_cell(addr, d.name(), name, SECTION8_VECTORS, mode),
                (None, Some(session)) => {
                    let mut gen = generator(name);
                    let run =
                        run_session(session, &mut *gen, &run_config_mode(SECTION8_VECTORS, mode));
                    (run.missed(), run.artifact.aliased)
                }
                (None, None) => unreachable!("inline mode builds a session"),
            };
            row4.push(missed.to_string());
            row5.push(format!("{:.2}", missed as f64 / adders));
            row_aliased.push(aliased.to_string());
        }
        rows4.push(row4);
        rows5.push(row5);
        rows_aliased.push(row_aliased);
    }
    let header = ["Des.", "LFSR-1", "LFSR-D", "LFSR-M", "Ramp"];
    println!(
        "missed faults (paper: LP 519/331/1097/485, BP 201/193/1005/1230, HP 308/315/1030/1679)"
    );
    println!("{}", table::render(&header, &rows4));
    println!("normalized (paper: LP 2.84/1.81/5.99/2.65, BP 1.25/1.20/6.24/7.64, HP 1.76/1.80/5.89/9.59)");
    println!("{}", table::render(&header, &rows5));
    if mode == ResponseCheck::Signature {
        println!(
            "aliased faults (detected by compare, missed by the 16-bit signature; expected 0):"
        );
        println!("{}", table::render(&header, &rows_aliased));
    }
    let lint_rows: Vec<Vec<String>> = designs
        .iter()
        .map(|d| {
            let mut row = vec![d.name().to_string()];
            row.extend(
                SECTION8_GENERATORS
                    .iter()
                    .map(|name| cell_lint_mode(d, name, SECTION8_VECTORS, mode)),
            );
            row
        })
        .collect();
    println!("static lint per cell (predicts the hot cells of the grid above without simulating):");
    println!("{}", table::render(&header, &lint_rows));
}

// ---------------------------------------------------------------- Table 6

fn table6(server: Option<&ServerAddr>, mode: ResponseCheck) {
    banner(
        "Table 6: mixed LFSR-1/LFSR-M test, 4k + 4k vectors (paper: LP 148 (0.81), HP 137 (0.40))",
    );
    let designs = paper_designs();
    let mut rows = Vec::new();
    for d in designs.iter().filter(|d| d.name() == "LP" || d.name() == "HP") {
        // Mixed run at 8k, plus the best single-mode baseline at 4k
        // for the improvement factor.
        let (missed, aliased, best) = match server {
            Some(addr) => {
                let mixed = format!("Mixed@{SECTION8_VECTORS}");
                let (missed, aliased) =
                    remote_cell(addr, d.name(), &mixed, 2 * SECTION8_VECTORS, mode);
                let best = SECTION8_GENERATORS
                    .iter()
                    .map(|name| remote_cell(addr, d.name(), name, SECTION8_VECTORS, mode).0)
                    .min()
                    .expect("nonempty roster");
                (missed, aliased, best)
            }
            None => {
                let session = BistSession::new(d).expect("session");
                let mut gen = mixed_generator(SECTION8_VECTORS as u64);
                let run =
                    run_session(&session, &mut *gen, &run_config_mode(2 * SECTION8_VECTORS, mode));
                let mut best = usize::MAX;
                for name in SECTION8_GENERATORS {
                    let mut g = generator(name);
                    best = best.min(
                        run_session(&session, &mut *g, &run_config_mode(SECTION8_VECTORS, mode))
                            .missed(),
                    );
                }
                (run.missed(), run.artifact.aliased, best)
            }
        };
        rows.push(vec![
            d.name().to_string(),
            missed.to_string(),
            format!("{:.2}", missed as f64 / d.netlist().stats().arithmetic() as f64),
            format!("{:.2}x", best as f64 / missed.max(1) as f64),
            if mode == ResponseCheck::Signature { aliased.to_string() } else { "-".to_string() },
            cell_lint_mode(d, &format!("Mixed@{SECTION8_VECTORS}"), 2 * SECTION8_VECTORS, mode),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["Des.", "misses", "normalized", "vs best single (4k)", "aliased", "lint"],
            &rows
        )
    );
}

// ------------------------------------------------------------------ Fig 1

fn fig1() {
    banner("Fig. 1: difficult-test activation zones on a tap amplitude PDF");
    let d = paper_designs().remove(0);
    let node = tap_acc(&d, 20);
    let g = tpg::model::lfsr1_model(12, tpg::ShiftDirection::LsbToMsb);
    let dist = distribution::predict_lfsr(d.netlist(), node, &g, distribution::DEFAULT_STEP);
    let density = dist.density_on(-1.0, 1.0, 80);
    println!("predicted amplitude PDF at tap 20 of LP under LFSR-1 (std {:.4}):", dist.std_dev());
    println!("{}", plot::ascii(&[("pdf", &density)], 80, 12));
    let b = 0.05;
    for t in zones::DifficultTest::all() {
        let zs = zones::activation_zones(t, b);
        let p = zones::activation_probability(t, &dist, b);
        println!("{t}: zones {zs:?} (|B| <= {b})  P[activation] = {p:.3e}");
    }
}

// -------------------------------------------------------------- Figs 2, 3

fn fig2() {
    banner("Figs. 2 & 3: a serious fault missed by the LFSR-1 test (sine response)");
    let d = paper_designs().remove(0);
    let session = BistSession::new(&d).expect("session");
    let mut gen = generator("LFSR-1");
    let run = run_session(&session, &mut *gen, &run_config(SECTION8_VECTORS));
    println!(
        "LFSR-1 @4k coverage on LP: {:.2}% ({} faults missed)",
        100.0 * run.coverage(),
        run.missed()
    );

    // Locate a missed fault that a passband sine DOES excite.
    let by_node = faultsim::report::missed_by_node(
        d.netlist(),
        session.universe(),
        session.ranges(),
        &run.result,
    );
    let mut sine = tpg::Sine::new(12, 0.85, 0.015).expect("valid sine");
    let inputs: Vec<i64> = (0..1024).map(|_| d.align_input(sine.next_word())).collect();
    let mut shown = false;
    'search: for summary in &by_node {
        for (&fid, &depth) in summary.missed.iter().zip(&summary.bits_below_msb) {
            let trace =
                faultsim::inject::trace_fault(d.netlist(), session.universe(), fid, &inputs);
            if trace.peak_error() > 0 {
                let lsb = d.netlist().format().lsb();
                println!(
                    "injected fault: {} at {} ({} bits below the effective MSB)",
                    session.universe().site(fid),
                    summary.label,
                    depth
                );
                println!(
                    "sine input (amplitude 0.85, f=0.015): fault excited at {} of 1024 cycles, peak error {:.4} full-scale",
                    trace.divergent_cycles().len(),
                    trace.peak_error() as f64 * lsb
                );
                let faulty: Vec<f64> = trace.faulty.iter().map(|&r| r as f64 * lsb).collect();
                let error: Vec<f64> = trace.error().iter().map(|&e| e as f64 * lsb).collect();
                println!("faulty output (spike pairs ride the sine peaks, paper Fig. 2):");
                println!("{}", plot::ascii(&[("faulty", &faulty[200..520])], 100, 14));
                println!("fault effect alone (faulty - good):");
                println!("{}", plot::ascii(&[("error", &error[200..520])], 100, 8));
                shown = true;
                break 'search;
            }
        }
    }
    if !shown {
        println!("(no missed fault excitable by this sine — all misses near-redundant)");
    }
}

// ------------------------------------------------------------------ Fig 4

fn fig4() {
    banner("Fig. 4: power spectra of the BIST test generators (dB vs normalized frequency)");
    let bins = 96;
    let specs = compat::paper_generator_spectra(bins);
    let series: Vec<(&str, Vec<f64>)> =
        specs.iter().map(|g| (g.name.as_str(), g.spectrum.values_db())).collect();
    let refs: Vec<(&str, &[f64])> = series.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    println!("{}", plot::ascii(&refs, 96, 20));
    println!("(x axis: 0 .. 0.5 of the sample rate; paper Fig. 4 shows the same ordering:");
    println!(" Ramp collapses above DC, LFSR-1 nulls at DC, LFSR-D flat at -4.77 dB, LFSR-M flat at 0 dB)");
    for g in &specs {
        println!(
            "  {:7}: mean power {:+.2} dB, power below 0.05fs: {:.1}%",
            g.name,
            10.0 * g.spectrum.mean_power().log10(),
            100.0 * g.spectrum.power_fraction_below(0.05)
        );
    }
}

// ------------------------------------------------------------------ Fig 5

fn fig5() {
    banner("Fig. 5: 300-sample segment of the 12-bit Type 1 LFSR sequence (paper: std 0.577)");
    let mut gen = generator("LFSR-1");
    let x = collect_values(&mut *gen, 300);
    let s = Summary::of(&x).expect("nonempty");
    println!("{}", plot::ascii(&[("LFSR-1", &x)], 100, 16));
    println!("standard deviation over the full period: {:.3}", {
        let mut g2 = generator("LFSR-1");
        Summary::of(&collect_values(&mut *g2, 4095)).expect("nonempty").std_dev()
    });
    println!("segment std: {:.3}, mean {:.3}", s.std_dev(), s.mean);
}

// -------------------------------------------------------------- Figs 6, 7

fn fig6() {
    banner("Figs. 6 & 7: test signal at tap 20 of LP — LFSR-1 vs decorrelated (paper: std 0.036 -> 0.121, 3.4x)");
    let d = paper_designs().remove(0);
    let node = tap_acc(&d, 20);
    let lsb = d.netlist().format().lsb();
    let mut stds = Vec::new();
    for name in ["LFSR-1", "LFSR-D"] {
        let mut gen = generator(name);
        let inputs: Vec<i64> = (0..4095).map(|_| d.align_input(gen.next_word())).collect();
        let samples = faultsim::inject::probe_node(d.netlist(), node, &inputs);
        let values: Vec<f64> = samples.iter().map(|&r| r as f64 * lsb).collect();
        let s = Summary::of(&values).expect("nonempty");
        println!("{name}: tap-20 std {:.4} (segment below)", s.std_dev());
        println!("{}", plot::ascii(&[(name, &values[300..600])], 100, 12));
        stds.push(s.std_dev());
    }
    println!("decorrelation gain: {:.2}x (paper: 3.4x)", stds[1] / stds[0]);

    // Eq. 1 prediction for the same two cases.
    let ranges = RangeAnalysis::analyze(d.netlist(), aligned_input_range(12, 16));
    let g = tpg::model::lfsr1_model(12, tpg::ShiftDirection::LsbToMsb);
    let shaped = variance::analyze(
        d.netlist(),
        &ranges,
        &[node],
        &variance::SourceModel::Shaped { model: g },
    );
    let white = variance::analyze(
        d.netlist(),
        &ranges,
        &[node],
        &variance::SourceModel::White { variance: 1.0 / 3.0 },
    );
    println!("Eq. 1 predictions: LFSR-1 {:.4}, white {:.4}", shaped[0].std_dev, white[0].std_dev);
}

// -------------------------------------------------------------- Figs 8, 9

fn fig8() {
    banner("Figs. 8 & 9: amplitude distribution at tap 20 — theory vs simulation");
    let d = paper_designs().remove(0);
    let node = tap_acc(&d, 20);
    let bins = 80;

    // Fig. 8: LFSR-1, linear-model prediction vs histogram.
    let g = tpg::model::lfsr1_model(12, tpg::ShiftDirection::LsbToMsb);
    let theory = distribution::predict_lfsr(d.netlist(), node, &g, distribution::DEFAULT_STEP);
    let mut gen = generator("LFSR-1");
    let inputs: Vec<i64> = (0..4095).map(|_| d.align_input(gen.next_word())).collect();
    let hist = distribution::simulate_histogram(d.netlist(), node, &inputs, bins);
    let span = 4.0 * theory.std_dev().max(1e-6);
    let t_density = theory.density_on(-span, span, bins);
    let mut h_density = vec![0.0; bins];
    // Re-bin the [-1,1) histogram onto the zoomed span.
    {
        let samples = faultsim::inject::probe_node(d.netlist(), node, &inputs);
        let lsb = d.netlist().format().lsb();
        let mut zoom = dsp::stats::Histogram::new(-span, span, bins);
        for &r in &samples {
            zoom.add(r as f64 * lsb);
        }
        h_density.copy_from_slice(&zoom.density());
    }
    println!(
        "Fig. 8 (LFSR-1): theory (linear model) vs simulation histogram, zoomed to +-{span:.3}:"
    );
    println!("{}", plot::ascii(&[("theory", &t_density), ("actual", &h_density)], 80, 14));
    println!("mismatch (max |diff| / peak): {:.3}", distribution::density_mismatch(&theory, &hist));

    // Fig. 9: decorrelated vs idealized independent-vector prediction.
    let ideal = distribution::predict_ideal(d.netlist(), node, distribution::DEFAULT_STEP);
    let mut gen_d = generator("LFSR-D");
    let inputs_d: Vec<i64> = (0..4095).map(|_| d.align_input(gen_d.next_word())).collect();
    let hist_d = distribution::simulate_histogram(d.netlist(), node, &inputs_d, bins);
    let span_d = 4.0 * ideal.std_dev().max(1e-6);
    let t2 = ideal.density_on(-span_d, span_d, bins);
    let mut h2 = vec![0.0; bins];
    {
        let samples = faultsim::inject::probe_node(d.netlist(), node, &inputs_d);
        let lsb = d.netlist().format().lsb();
        let mut zoom = dsp::stats::Histogram::new(-span_d, span_d, bins);
        for &r in &samples {
            zoom.add(r as f64 * lsb);
        }
        h2.copy_from_slice(&zoom.density());
    }
    println!("Fig. 9 (LFSR-D vs idealized generator), zoomed to +-{span_d:.3}:");
    println!("{}", plot::ascii(&[("theory", &t2), ("LFSR-D", &h2)], 80, 14));
    println!("mismatch: {:.3}", distribution::density_mismatch(&ideal, &hist_d));
}

// ------------------------------------------------------------ Figs 10-12

fn fig10() {
    banner("Figs. 10-12: fault-coverage curves, 4 generators x 3 designs");
    for d in paper_designs() {
        let session = BistSession::new(&d).expect("session");
        println!("--- {} (universe {} faults) ---", d.name(), session.universe().len());
        let checkpoints: Vec<u32> = vec![16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
        let mut series: Vec<(String, Vec<f64>)> = Vec::new();
        for name in SECTION8_GENERATORS {
            let mut gen = generator(name);
            let run = run_session(&session, &mut *gen, &run_config(SECTION8_VECTORS));
            // Zoom to the knee region, as the paper's figures do
            // ("the vertical scale has been changed to accommodate the
            // Ramp curve"): clamp below 80% coverage.
            let curve: Vec<f64> = run
                .result
                .curve(&checkpoints)
                .iter()
                .map(|&(_, c)| (100.0 * c).max(80.0))
                .collect();
            series.push((name.to_string(), curve));
        }
        let refs: Vec<(&str, &[f64])> =
            series.iter().map(|(n, v)| (n.as_str(), v.as_slice())).collect();
        println!("(coverage clamped at 80% — the paper rescales similarly)");
        println!("{}", plot::ascii(&refs, 90, 16));
        print!("vectors:");
        for c in &checkpoints {
            print!(" {c}");
        }
        println!(" (log-spaced)");
        for (name, curve) in &series {
            println!("  {:7} final coverage {:.2}%", name, curve.last().expect("nonempty"));
        }
    }
}

// ----------------------------------------------------------------- Fig 13

fn fig13() {
    banner("Fig. 13: mixed-mode advantage on LP (switch to max-variance after 2k vectors)");
    let designs = paper_designs();
    let d = &designs[0];
    let session = BistSession::new(d).expect("session");
    let checkpoints: Vec<u32> = vec![16, 64, 256, 1024, 1536, 2048, 2560, 3072, 4096];
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, mut gen) in [
        ("LFSR-1".to_string(), generator("LFSR-1")),
        ("LFSR-M".to_string(), generator("LFSR-M")),
        ("mixed@2k".to_string(), mixed_generator(2048)),
    ] {
        let run = run_session(&session, &mut *gen, &run_config(SECTION8_VECTORS));
        let curve: Vec<f64> =
            run.result.curve(&checkpoints).iter().map(|&(_, c)| (100.0 * c).max(80.0)).collect();
        println!(
            "  {:9} misses @4k: {:5}  coverage {:.2}%",
            label,
            run.missed(),
            100.0 * run.coverage()
        );
        series.push((label, curve));
    }
    let refs: Vec<(&str, &[f64])> =
        series.iter().map(|(n, v)| (n.as_str(), v.as_slice())).collect();
    println!("{}", plot::ascii(&refs, 90, 16));
    print!("vectors:");
    for c in &checkpoints {
        print!(" {c}");
    }
    println!();
}

// ---------------------------------------------------------------- extras

/// Beyond the paper's figures: quantify Section 5's "serious missed
/// fault" claim over *all* misses, per generator, using the
/// near-redundancy analysis the paper proposes in its conclusion.
fn severity() {
    banner("Severity of missed faults under an operating sine (paper Section 5, quantified)");
    let d = paper_designs().remove(0);
    let session = BistSession::new(&d).expect("session");
    let mut sine = tpg::Sine::new(12, 0.85, 0.015).expect("sine");
    let stimulus: Vec<i64> = (0..2048).map(|_| d.align_input(sine.next_word())).collect();
    let mut rows = Vec::new();
    for name in SECTION8_GENERATORS {
        let mut gen = generator(name);
        let run = run_session(&session, &mut *gen, &run_config(SECTION8_VECTORS));
        let missed = run.result.missed();
        let (_, summary) = bist_core::analysis::assess_missed(&session, &missed, &stimulus);
        rows.push(vec![
            name.to_string(),
            missed.len().to_string(),
            summary.serious.to_string(),
            summary.activated_only.to_string(),
            summary.near_redundant.to_string(),
        ]);
    }
    println!("LP design, 4k-vector tests; stimulus: 0.85-amplitude sine at 0.015 fs");
    println!(
        "{}",
        table::render(
            &["generator", "missed", "serious", "activated-only", "near-redundant"],
            &rows
        )
    );
    println!("'serious' = the sine visibly corrupts the output — the paper's Fig. 2 escape class");
}

/// The paper's conclusion lists coverage boosters beyond the mixed
/// scheme; this experiment measures two of them on the LP design:
/// longer sequences from *larger* LFSRs (no input cycling) and a
/// deterministic tuned phase (amplitude-swept passband sine).
fn extensions() {
    banner(
        "Extensions (paper Conclusion): larger LFSRs and a deterministic tuned phase (LP design)",
    );
    let d = paper_designs().remove(0);
    let session = BistSession::new(&d).expect("session");
    let mut rows = Vec::new();

    let mut run_one = |label: &str, gen: &mut dyn TestGenerator, vectors: usize| {
        let run = run_session(&session, gen, &run_config(vectors));
        rows.push(vec![
            label.to_string(),
            vectors.to_string(),
            run.missed().to_string(),
            format!("{:.3}%", 100.0 * run.coverage()),
        ]);
        run.missed()
    };

    // Baselines.
    run_one("LFSR-D 12-bit", &mut *generator("LFSR-D"), SECTION8_VECTORS);
    // 12-bit sequences cycle after 4095 vectors: quadrupling the length
    // replays patterns.
    run_one("LFSR-D 12-bit", &mut *generator("LFSR-D"), 4 * SECTION8_VECTORS);
    // A 16-bit decorrelated LFSR resized to 12 bits never cycles here.
    let wide = tpg::Decorrelated::maximal(16, tpg::ShiftDirection::LsbToMsb).expect("16-bit LFSR");
    let mut wide12 = tpg::Resized::new(Box::new(wide), 12).expect("resize to 12");
    run_one("LFSR-D 16-bit (top 12)", &mut wide12, 4 * SECTION8_VECTORS);

    // The mixed scheme, then mixed + deterministic tuned phase.
    run_one(
        "LFSR-1/LFSR-M mixed",
        &mut *mixed_generator(SECTION8_VECTORS as u64),
        2 * SECTION8_VECTORS,
    );
    let tuned = bist_core::selection::tuned_sweep_for(&d).expect("tuned sweep");
    let mixed = mixed_generator(SECTION8_VECTORS as u64);
    let mut three_phase =
        tpg::Mixed::new(mixed, Box::new(tuned), 2 * SECTION8_VECTORS as u64).expect("widths match");
    run_one("mixed + ZoneSweep phase", &mut three_phase, 3 * SECTION8_VECTORS);

    println!("{}", table::render(&["scheme", "vectors", "missed", "coverage"], &rows));
}

/// The "more aggressive scaling techniques, when appropriate" ablation:
/// tighter claimed ranges trim more sign cells and shrink the hard-fault
/// residue, at the cost of output corruption when real excursions exceed
/// the claim. Both sides of the trade-off are measured.
fn scaling() {
    banner("Scaling-policy ablation (paper Conclusion): testability vs overflow risk (LP design)");
    let base_spec = filters::FilterSpec {
        name: "LP".into(),
        band: dsp::firdesign::BandKind::Lowpass { cutoff: 0.04 },
        taps: 60,
        input_bits: 12,
        coef_frac_bits: 15,
        max_csd_digits: 4,
        width: 16,
        kaiser_beta: 5.5,
    };
    let reference = filters::FilterDesign::elaborate(base_spec.clone()).expect("worst-case design");
    let mut white = tpg::IdealWhite::new(12).expect("white");
    let abuse: Vec<i64> = (0..8192).map(|_| white.next_word()).collect();
    let reference_out = fault_free_run(&reference, &abuse);

    let mut rows = Vec::new();
    let policies: Vec<(String, filters::ScalingPolicy)> = vec![
        ("worst-case (paper)".into(), filters::ScalingPolicy::WorstCase),
        ("statistical k=4".into(), filters::ScalingPolicy::Statistical { k_rms: 4.0 }),
        ("statistical k=2.5".into(), filters::ScalingPolicy::Statistical { k_rms: 2.5 }),
        ("statistical k=1.5".into(), filters::ScalingPolicy::Statistical { k_rms: 1.5 }),
    ];
    for (label, policy) in policies {
        let d = filters::FilterDesign::elaborate_with(base_spec.clone(), policy)
            .expect("design elaborates");
        let session = BistSession::new(&d).expect("session");
        let mut gen = generator("LFSR-D");
        let run = run_session(&session, &mut *gen, &run_config(SECTION8_VECTORS));
        let out = fault_free_run(&d, &abuse);
        let corrupted = out.iter().zip(&reference_out).filter(|(a, b)| a != b).count();
        rows.push(vec![
            label,
            session.universe().len().to_string(),
            run.missed().to_string(),
            format!("{:.3}%", 100.0 * run.coverage()),
            format!("{:.3}%", 100.0 * corrupted as f64 / abuse.len() as f64),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "policy",
                "universe",
                "missed (LFSR-D @4k)",
                "coverage",
                "corrupted cycles (white abuse)"
            ],
            &rows
        )
    );
    println!("(corruption measured against the worst-case design on 8k full-scale white vectors)");
}

/// Ripple-carry vs carry-save accumulation (paper Section 3: the
/// frequency-domain analysis "applies to circuits implemented using
/// either ripple-carry or carry-save adders"): same coefficients, same
/// generators, both architectures.
fn csa() {
    banner("Architecture comparison: ripple-carry vs carry-save vs folded-symmetric LP (paper Section 3)");
    let ripple = paper_designs().remove(0);
    let carry_save = filters::designs::lowpass_carry_save().expect("CSA design");
    let symmetric = filters::designs::lowpass_symmetric().expect("symmetric design");
    let mut rows = Vec::new();
    for d in [&ripple, &carry_save, &symmetric] {
        let s = d.netlist().stats();
        let session = BistSession::new(d).expect("session");
        let mut row = vec![
            d.name().to_string(),
            format!("{}+{}csa", s.adders + s.subtractors, s.csa_stages),
            s.registers.to_string(),
            session.universe().len().to_string(),
        ];
        for name in ["LFSR-1", "LFSR-D"] {
            let mut gen = generator(name);
            let run = run_session(&session, &mut *gen, &run_config(SECTION8_VECTORS));
            row.push(run.missed().to_string());
        }
        rows.push(row);
    }
    println!(
        "{}",
        table::render(
            &["design", "adders", "regs", "faults", "LFSR-1 missed", "LFSR-D missed"],
            &rows
        )
    );
    println!("(the LFSR-1-vs-LFSR-D gap — the compatibility effect — shows on every architecture;");
    println!(" LP-SYM's larger absolute counts reflect weaker redundancy pruning: its multiplier");
    println!(
        " cones hang off pre-adders of two delayed samples, outside the exact input-cone analysis)"
    );
}

fn fault_free_run(d: &FilterDesign, words: &[i64]) -> Vec<i64> {
    let mut sim = rtl::sim::BitSlicedSim::new(d.netlist());
    words
        .iter()
        .map(|&w| {
            sim.step(d.align_input(w));
            sim.lane_value(d.output(), 0)
        })
        .collect()
}

/// Engine ablation: what each analysis stage contributes to the fault
/// universe, and what the stage schedule buys in run time.
fn ablation() {
    banner("Engine ablation: universe pruning stages and fault-dropping schedule (LP design)");
    let d = paper_designs().remove(0);
    let netlist = d.netlist();
    let ranges = d.claimed_ranges();
    let reach = rtl::reachability::Reachability::analyze(netlist, 12);

    let plain = faultsim::FaultUniverse::enumerate(netlist, ranges);
    let pruned = faultsim::FaultUniverse::enumerate_pruned(netlist, ranges, &reach);
    println!("fault universe (collapsed classes):");
    println!(
        "  range analysis only:           {} ({} uncollapsed)",
        plain.len(),
        plain.uncollapsed_len()
    );
    println!(
        "  + input-cone reachability:     {} ({} uncollapsed)",
        pruned.len(),
        pruned.uncollapsed_len()
    );

    let mut gen = generator("LFSR-D");
    gen.reset();
    let inputs: Vec<i64> = (0..SECTION8_VECTORS).map(|_| d.align_input(gen.next_word())).collect();
    let mut rows = Vec::new();
    for (label, boundaries) in [
        ("no dropping stages", vec![]),
        ("drop @64", vec![64]),
        ("drop @64/256/1024 (default)", vec![64, 256, 1024]),
        ("drop @16/64/256/1024", vec![16, 64, 256, 1024]),
    ] {
        let schedule = faultsim::StageSchedule::with_boundaries(boundaries);
        let t = std::time::Instant::now();
        let result = faultsim::ParallelFaultSimulator::new(netlist, &pruned)
            .with_schedule(schedule)
            .run(&inputs);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}s", t.elapsed().as_secs_f64()),
            result.missed().len().to_string(),
        ]);
    }
    println!(
        "{}",
        table::render(&["schedule", "wall time", "missed (identical by construction)"], &rows)
    );
}

// ------------------------------------------------------- compaction study

/// Runs one design under one generator in the given mode, timing the
/// whole session (pattern generation + fault simulation + readout).
fn timed_run(
    session: &BistSession<'_>,
    gen_name: &str,
    vectors: usize,
    mode: ResponseCheck,
) -> (bist_core::session::BistRun, f64) {
    let mut gen = generator(gen_name);
    let started = std::time::Instant::now();
    let run = run_session(session, &mut *gen, &run_config_mode(vectors, mode));
    (run, started.elapsed().as_secs_f64() * 1000.0)
}

/// The `bench5` compaction study: every paper design runs the same
/// LFSR-D test twice — trace compare vs MISR signature — and the table
/// (and, with `--json`, the `BENCH_5.json` `comparison` object) records
/// the memory/throughput trade: O(vectors) response storage and staged
/// fault dropping on one side, O(lanes) storage and full-length
/// simulation on the other, with verdicts bit-identical up to measured
/// aliasing (zero on this roster).
fn bench5() {
    banner("Compaction study: trace compare vs 16-bit MISR signature (memory and throughput)");
    let designs = paper_designs();
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut mismatches = 0usize;
    for d in &designs {
        let session = BistSession::new(d).expect("session");
        let (trace, trace_ms) =
            timed_run(&session, "LFSR-D", SECTION8_VECTORS, ResponseCheck::Trace);
        let (signed, sig_ms) =
            timed_run(&session, "LFSR-D", SECTION8_VECTORS, ResponseCheck::Signature);
        if trace.result.detection_cycles() != signed.result.detection_cycles() {
            eprintln!("{}: signature-mode detection cycles diverge from trace mode", d.name());
            mismatches += 1;
        }
        let aliased = signed.artifact.aliased;
        let store_trace = trace.artifact.response_store_words;
        let store_sig = signed.artifact.response_store_words;
        // Nominal throughput: fault-cycles checked per second. The
        // numerator is the same in both modes (every fault's verdict
        // covers the full test), so the ratio is the inverse wall-time
        // ratio; trace mode's fault dropping is why it wins.
        let fault_cycles = session.universe().len() as f64 * SECTION8_VECTORS as f64;
        rows.push(vec![
            d.name().to_string(),
            trace.missed().to_string(),
            signed.missed().to_string(),
            aliased.to_string(),
            format!("{trace_ms:.0} / {sig_ms:.0}"),
            format!("{:.2}x", sig_ms / trace_ms.max(1e-9)),
            format!("{store_trace} / {store_sig}"),
            format!("{:.0}x", store_trace as f64 / store_sig as f64),
        ]);
        entries.push(
            obs::JsonValue::object()
                .push("design", d.name())
                .push("missed_trace", trace.missed() as u64)
                .push("missed_signature", signed.missed() as u64)
                .push("aliased", aliased as u64)
                .push("trace_ms", trace_ms)
                .push("signature_ms", sig_ms)
                .push("signature_slowdown", sig_ms / trace_ms.max(1e-9))
                .push("trace_store_words", store_trace)
                .push("signature_store_words", store_sig)
                .push("store_ratio", store_trace as f64 / store_sig as f64)
                .push("fault_cycles", fault_cycles)
                .push("trace_mcps", fault_cycles / trace_ms.max(1e-9) / 1e3)
                .push("signature_mcps", fault_cycles / sig_ms.max(1e-9) / 1e3),
        );
    }
    println!(
        "{}",
        table::render(
            &[
                "Des.",
                "missed (trace)",
                "missed (sig)",
                "aliased",
                "wall ms (t/s)",
                "slowdown",
                "store words (t/s)",
                "memory"
            ],
            &rows
        )
    );
    println!("LFSR-D @4k; 'store words' is the peak response-storage footprint per run:");
    println!("the materialized fault-free trace vs one 16-bit signature per bit-sliced lane.");
    bist_bench::artifacts::set_comparison(
        obs::JsonValue::object()
            .push("study", "trace_vs_signature")
            .push("generator", "LFSR-D")
            .push("vectors", SECTION8_VECTORS as u64)
            .push("misr_width", 16u64)
            .push("designs", obs::JsonValue::Array(entries)),
    );
    if mismatches > 0 {
        eprintln!("{mismatches} design(s) had trace/signature verdict mismatches");
        std::process::exit(1);
    }
}

// ------------------------------------------------------- reseeding study

/// The `bench7` reseeding study: every Section 8 grid cell's residue
/// is justified once, then compressed under several seed block
/// lengths, recording the tester-storage vs residual-miss trade-off
/// against the paper's hand-built mixed-mode patch (Table 6). With
/// `--json`, the per-cell curve lands in `BENCH_7.json`'s `comparison`
/// object.
fn bench7() {
    banner("Top-off study: seed storage vs residual misses (baseline: paper Table 6 mixed mode)");
    const BLOCKS: [u32; 3] = [64, 256, 1024];
    const MAX_SEEDS: u32 = 16;
    let designs = paper_designs();
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for d in &designs {
        let session = BistSession::new(d).expect("session");
        let input_bits = d.spec().input_bits;
        // The paper's patch for the same residue problem: a mixed
        // LFSR-1/LFSR-M test at double length, vectors stored nowhere
        // but misses never classified.
        let mixed_missed = {
            let mut gen = mixed_generator(SECTION8_VECTORS as u64);
            run_session(&session, &mut *gen, &run_config(2 * SECTION8_VECTORS)).missed()
        };
        for name in SECTION8_GENERATORS {
            let mut gen = generator(name);
            let run = run_session(&session, &mut *gen, &run_config(SECTION8_VECTORS));
            let residue = run.result.missed();
            // Justify each residual fault once; only the compression
            // knobs vary across the block-length sweep.
            let justifier = atpg::Justifier::new(d.netlist(), session.universe(), input_bits);
            let mut untestable = 0usize;
            let mut targets = Vec::new();
            let mut patterns = std::collections::BTreeMap::new();
            for &id in &residue {
                match justifier.justify(id) {
                    atpg::Verdict::Untestable => untestable += 1,
                    atpg::Verdict::Detected { pattern } => {
                        targets.push(id);
                        patterns.insert(id, pattern);
                    }
                    atpg::Verdict::Unresolved => targets.push(id),
                }
            }
            for block_len in BLOCKS {
                let cfg = bist_core::TopOffConfig { block_len, max_seeds: MAX_SEEDS };
                let plan = atpg::plan_reseeding(
                    d.netlist(),
                    session.universe(),
                    &targets,
                    &patterns,
                    input_bits,
                    &cfg,
                );
                let (detected, unresolved) =
                    atpg::verify_plan(d.netlist(), session.universe(), &targets, &plan, input_bits);
                let storage_bits = plan.seed_bits() + plan.stored_bits();
                rows.push(vec![
                    d.name().to_string(),
                    name.to_string(),
                    block_len.to_string(),
                    residue.len().to_string(),
                    format!("{}+{}", plan.seeds.len(), plan.stored.len()),
                    storage_bits.to_string(),
                    plan.total_vectors().to_string(),
                    untestable.to_string(),
                    unresolved.len().to_string(),
                    mixed_missed.to_string(),
                ]);
                entries.push(
                    obs::JsonValue::object()
                        .push("design", d.name())
                        .push("generator", name)
                        .push("block_len", block_len as u64)
                        .push("max_seeds", MAX_SEEDS as u64)
                        .push("residue", residue.len() as u64)
                        .push("untestable", untestable as u64)
                        .push("seeds", plan.seeds.len() as u64)
                        .push("seed_bits", plan.seed_bits() as u64)
                        .push("stored_patterns", plan.stored.len() as u64)
                        .push("stored_bits", plan.stored_bits() as u64)
                        .push("storage_bits", storage_bits as u64)
                        .push("topoff_vectors", plan.total_vectors() as u64)
                        .push("detected", detected.len() as u64)
                        .push("unresolved", unresolved.len() as u64)
                        .push("mixed_missed", mixed_missed as u64),
                );
            }
        }
    }
    println!(
        "{}",
        table::render(
            &[
                "Des.",
                "gen",
                "block",
                "residue",
                "seeds+raw",
                "stored bits",
                "top-off vec",
                "untest.",
                "unresolved",
                "mixed missed"
            ],
            &rows
        )
    );
    println!("'stored bits' is the tester storage: seed bits plus raw fallback pattern bits;");
    println!("'unresolved' are honest misses after the verified plan (untestable faults are");
    println!("proven unactivatable, not missed). The mixed baseline stores nothing but leaves");
    println!("its whole column of misses unclassified.");
    bist_bench::artifacts::set_comparison(
        obs::JsonValue::object()
            .push("study", "topoff_tradeoff")
            .push("vectors", SECTION8_VECTORS as u64)
            .push("max_seeds", MAX_SEEDS as u64)
            .push(
                "baseline",
                format!("Mixed@{SECTION8_VECTORS} over {} vectors", 2 * SECTION8_VECTORS),
            )
            .push("cells", obs::JsonValue::Array(entries)),
    );
}

/// The `bench8` proof-pruning study: for every design of the Section 8
/// grid (the paper's three plus the symmetric, carry-save and mini
/// variants), the ATPG screen's candidates are handed to the SAT miter
/// once, proven-redundant faults are removed from the universe, and
/// each generator cell is then fault-simulated twice — full universe
/// vs pruned — under identical inputs. Surviving faults must get
/// bit-identical detection cycles (the study exits non-zero
/// otherwise); the per-cell wall times and before/after universe sizes
/// land in `BENCH_8.json`'s `comparison` object with `--json`.
fn bench8() {
    banner("SAT proof-pruning study: universe size and wall time, before vs after");
    const MAX_CONFLICTS: u64 = 2_000;
    let mut designs = paper_designs();
    designs.push(filters::designs::lowpass_symmetric().expect("LP-SYM elaborates"));
    designs.push(filters::designs::lowpass_carry_save().expect("LP-CSA elaborates"));
    designs.push(filters::designs::lowpass_mini().expect("LP-MINI elaborates"));
    let mut rows = Vec::new();
    let mut design_entries = Vec::new();
    let mut cell_entries = Vec::new();
    let mut total_pruned = 0usize;
    for d in &designs {
        let session = BistSession::new(d).expect("session");
        let universe = session.universe();
        let netlist = d.netlist();
        let input_bits = d.spec().input_bits;

        let t = std::time::Instant::now();
        let screen = atpg::untestable_faults(netlist, universe, input_bits);
        let screen_ms = t.elapsed().as_millis() as u64;
        let specs: Vec<sat::FaultSpec> = screen
            .iter()
            .map(|&id| {
                let site = universe.site(id);
                sat::FaultSpec { node: site.node, cell: site.cell, fault: site.representative }
            })
            .collect();
        let t = std::time::Instant::now();
        let outcome = sat::prove_faults(
            netlist,
            input_bits,
            &specs,
            &sat::PruneConfig { max_conflicts: MAX_CONFLICTS },
        );
        let prove_ms = t.elapsed().as_millis() as u64;
        let redundant: std::collections::BTreeSet<usize> = screen
            .iter()
            .zip(&outcome.verdicts)
            .filter(|(_, (_, v))| matches!(v, sat::FaultVerdict::Redundant))
            .map(|(id, _)| id.index())
            .collect();
        total_pruned += redundant.len();
        let keep: Vec<faultsim::FaultId> = (0..universe.len() as u32)
            .map(faultsim::FaultId)
            .filter(|id| !redundant.contains(&id.index()))
            .collect();
        let pruned_universe = universe.subset(&keep);
        design_entries.push(
            obs::JsonValue::object()
                .push("design", d.name())
                .push("universe_before", universe.len() as u64)
                .push("universe_after", pruned_universe.len() as u64)
                .push("candidates", screen.len() as u64)
                .push("redundant_proven", outcome.redundant as u64)
                .push("detectable", outcome.detectable as u64)
                .push("unknown", outcome.unknown as u64)
                .push("screen_ms", screen_ms)
                .push("prove_ms", prove_ms)
                .push("conflicts", outcome.stats.conflicts),
        );

        for name in SECTION8_GENERATORS {
            let mut gen = generator(name);
            let inputs: Vec<i64> =
                (0..SECTION8_VECTORS).map(|_| d.align_input(gen.next_word())).collect();
            let t = std::time::Instant::now();
            let full = faultsim::ParallelFaultSimulator::new(netlist, universe).run(&inputs);
            let full_ms = t.elapsed().as_millis() as u64;
            let t = std::time::Instant::now();
            let pruned =
                faultsim::ParallelFaultSimulator::new(netlist, &pruned_universe).run(&inputs);
            let pruned_ms = t.elapsed().as_millis() as u64;

            // Bit-identical verdicts for every surviving fault, and no
            // detection of any fault the miter proved redundant.
            let full_cycles = full.detection_cycles();
            let pruned_cycles = pruned.detection_cycles();
            let identical =
                keep.iter().zip(pruned_cycles).all(|(id, &c)| full_cycles[id.index()] == c);
            let pruned_detected = redundant.iter().filter(|&&i| full_cycles[i].is_some()).count();
            if !identical || pruned_detected != 0 {
                eprintln!(
                    "bench8 failed on {} x {name}: pruning changed surviving verdicts \
                     ({identical}) or a proven-redundant fault was detected ({pruned_detected})",
                    d.name()
                );
                std::process::exit(1);
            }
            rows.push(vec![
                d.name().to_string(),
                name.to_string(),
                universe.len().to_string(),
                pruned_universe.len().to_string(),
                full.detected_count().to_string(),
                full_ms.to_string(),
                pruned_ms.to_string(),
            ]);
            cell_entries.push(
                obs::JsonValue::object()
                    .push("design", d.name())
                    .push("generator", name)
                    .push("universe_before", universe.len() as u64)
                    .push("universe_after", pruned_universe.len() as u64)
                    .push("detected", full.detected_count() as u64)
                    .push("full_ms", full_ms)
                    .push("pruned_ms", pruned_ms)
                    .push("verdicts_identical", identical),
            );
        }
    }
    println!(
        "{}",
        table::render(
            &["Des.", "gen", "before", "after", "detected", "full ms", "pruned ms"],
            &rows
        )
    );
    println!("'before'/'after' are collapsed universe sizes around SAT proof pruning;");
    println!("surviving faults were verified bit-identical between the two engines in");
    println!("every cell. Designs whose screen sheds no candidates keep before == after.");
    if total_pruned == 0 {
        eprintln!("bench8 failed: no fault in the grid was proven redundant and pruned");
        std::process::exit(1);
    }
    bist_bench::artifacts::set_comparison(
        obs::JsonValue::object()
            .push("study", "sat_prune")
            .push("vectors", SECTION8_VECTORS as u64)
            .push("max_conflicts", MAX_CONFLICTS)
            .push("designs", obs::JsonValue::Array(design_entries))
            .push("cells", obs::JsonValue::Array(cell_entries)),
    );
}

/// Total milliseconds a run spent in one named session stage.
fn stage_ms(run: &bist_core::session::BistRun, name: &str) -> f64 {
    run.artifact.stages.iter().filter(|s| s.name == name).map(|s| s.millis).sum()
}

/// The `bench9` structural-collapse study: every paper design plus
/// LP-MINI runs the LFSR-D test twice per response-check mode — plain
/// vs collapsed — and each pair must produce bit-identical
/// full-universe verdicts (detection cycles, per-fault signatures and
/// the good-machine signature; the study exits non-zero otherwise, or
/// if no built-in filter clears a 40% raw-universe reduction). The
/// per-cell collapse census, fault-sim wall times and shared lint
/// tallies land in `BENCH_9.json`'s `comparison` object with `--json`,
/// an LP-MINI *expanded* raw-universe baseline replays every member
/// line as its own machine to verify the equivalence premise
/// end-to-end, and the admission-time `L7xx` lints are demonstrated on
/// the same design.
fn bench9() {
    banner("Structural collapse study: representative-only simulation, verdicts bit-identical");
    let mut designs = paper_designs();
    designs.push(filters::designs::lowpass_mini().expect("LP-MINI elaborates"));
    let mut rows = Vec::new();
    let mut cell_entries = Vec::new();
    let mut best_builtin = 0.0f64;
    let mut mini_classes = 0usize;
    for d in &designs {
        let session = BistSession::new(d).expect("session");
        for mode in [ResponseCheck::Trace, ResponseCheck::Signature] {
            let mode_name = match mode {
                ResponseCheck::Trace => "trace",
                ResponseCheck::Signature => "signature",
            };
            let config = run_config_mode(SECTION8_VECTORS, mode);
            let mut gen = generator("LFSR-D");
            let plain = run_session(&session, &mut *gen, &config);
            let mut gen = generator("LFSR-D");
            let collapsed = run_session(&session, &mut *gen, &config.with_collapse(true));
            // Byte-identity over the *expanded* universe: the collapsed
            // run must be indistinguishable from the plain one.
            let identical = plain.result.detection_cycles() == collapsed.result.detection_cycles()
                && plain.result.signatures() == collapsed.result.signatures()
                && plain.signature == collapsed.signature
                && plain.artifact.coverage == collapsed.artifact.coverage;
            if !identical {
                eprintln!(
                    "bench9 failed on {} x {mode_name}: collapsed verdicts diverge from plain",
                    d.name()
                );
                std::process::exit(1);
            }
            let census =
                collapsed.artifact.collapse.clone().expect("collapse runs attach their census");
            if d.name() != "LP-MINI" {
                best_builtin = best_builtin.max(census.reduction_vs_raw);
            } else {
                mini_classes = census.classes_after;
            }
            let plain_sim_ms = stage_ms(&plain, "session.fault_sim");
            let collapsed_sim_ms = stage_ms(&collapsed, "session.fault_sim");
            // The admission-shaped tally for the collapse spec: same
            // L7xx-bearing diagnostics the daemon attaches, rendered
            // through the shared `lint_tally` formatter the tables use.
            let spec = CampaignSpec::new(d.name(), "LFSR-D", SECTION8_VECTORS)
                .with_mode(mode)
                .with_collapse(true);
            let tally =
                lint_tally(&lint::admission_lint(&spec, None).expect("registry pairings lint"));
            rows.push(vec![
                d.name().to_string(),
                mode_name.to_string(),
                census.raw_lines.to_string(),
                census.sites_before.to_string(),
                census.classes_after.to_string(),
                format!("{:.1}%", 100.0 * census.reduction_vs_raw),
                format!("{plain_sim_ms:.0} / {collapsed_sim_ms:.0}"),
                tally.clone(),
            ]);
            cell_entries.push(
                obs::JsonValue::object()
                    .push("design", d.name())
                    .push("generator", "LFSR-D")
                    .push("mode", mode_name)
                    .push("plain_sim_ms", plain_sim_ms)
                    .push("collapsed_sim_ms", collapsed_sim_ms)
                    .push("lint", tally)
                    .push("verdicts_identical", identical)
                    .push("collapse", census.to_json()),
            );
        }
    }
    println!(
        "{}",
        table::render(
            &["Des.", "mode", "raw", "sites", "classes", "red. vs raw", "sim ms p/c", "lint"],
            &rows
        )
    );
    println!("'raw' counts every stuck-at line of the active cells, 'sites' the screened");
    println!("universe, 'classes' what the collapsed run simulates; verdicts were verified");
    println!("bit-identical (cycles, signatures, coverage) in every cell.");
    if best_builtin < 0.40 {
        eprintln!(
            "bench9 failed: best built-in reduction vs raw is {:.1}% (< 40%)",
            100.0 * best_builtin
        );
        std::process::exit(1);
    }

    // Honest raw baseline on LP-MINI: expand every member line into
    // its own machine and replay the same inputs — each member must
    // get exactly its site representative's verdict, which is the
    // premise the collapse stage's byte-identity rests on.
    let mini = designs.last().expect("LP-MINI present");
    let session = BistSession::new(mini).expect("session");
    let universe = session.universe();
    let (raw_universe, origin) = universe.expanded();
    let mut gen = generator("LFSR-D");
    let inputs: Vec<i64> =
        (0..SECTION8_VECTORS).map(|_| mini.align_input(gen.next_word())).collect();
    let netlist = mini.netlist();
    let t = std::time::Instant::now();
    let raw = faultsim::ParallelFaultSimulator::new(netlist, &raw_universe).run(&inputs);
    let raw_ms = t.elapsed().as_secs_f64() * 1000.0;
    let t = std::time::Instant::now();
    let sites = faultsim::ParallelFaultSimulator::new(netlist, universe).run(&inputs);
    let sites_ms = t.elapsed().as_secs_f64() * 1000.0;
    let site_cycles = sites.detection_cycles();
    let divergent = raw
        .detection_cycles()
        .iter()
        .zip(&origin)
        .filter(|&(&c, &s)| c != site_cycles[s as usize])
        .count();
    println!(
        "\n  LP-MINI raw baseline: {} member machine(s) {raw_ms:.0} ms vs {} site(s) \
         {sites_ms:.0} ms vs {mini_classes} class(es) simulated; {divergent} member \
         verdict(s) diverged from their representative",
        raw_universe.len(),
        universe.len(),
    );
    if divergent != 0 {
        eprintln!("bench9 failed: {divergent} member line(s) disagree with their representative");
        std::process::exit(1);
    }

    // The L7xx family as the daemon would attach it at admission time.
    let spec = CampaignSpec::new("LP-MINI", "LFSR-D", SECTION8_VECTORS).with_collapse(true);
    let diags = lint::admission_lint(&spec, None).expect("LP-MINI admits");
    println!("  admission lint (collapse spec, tally {}):", lint_tally(&diags));
    for diag in diags.iter().filter(|d| d.code.starts_with("L7")) {
        println!("    {diag}");
    }
    let disagreements = diags.iter().filter(|d| d.code == "L703").count();
    bist_bench::artifacts::set_comparison(
        obs::JsonValue::object()
            .push("study", "structural_collapse")
            .push("vectors", SECTION8_VECTORS as u64)
            .push("best_builtin_reduction_vs_raw", best_builtin)
            .push("cells", obs::JsonValue::Array(cell_entries))
            .push(
                "raw_baseline",
                obs::JsonValue::object()
                    .push("design", "LP-MINI")
                    .push("raw_machines", raw_universe.len() as u64)
                    .push("site_machines", universe.len() as u64)
                    .push("class_machines", mini_classes as u64)
                    .push("raw_ms", raw_ms)
                    .push("sites_ms", sites_ms)
                    .push("divergent_members", divergent as u64),
            )
            .push(
                "admission",
                obs::JsonValue::object()
                    .push("design", "LP-MINI")
                    .push("tally", lint_tally(&diags))
                    .push("scoap_l1xx_disagreements", disagreements as u64),
            ),
    );
}

/// The `bench10` flat-kernel study: the signature-mode Section 8 grid
/// (LP/BP/HP under the four Table 4 generators at 4096 vectors, plus
/// LP-MINI) runs twice per cell — once on the retained graph-walker
/// engine, once on the flat structure-of-arrays tape kernel — and every
/// pair must produce bit-identical verdicts: per-fault detection
/// cycles, per-fault signature sets, the good-machine signature and
/// the coverage figure (the study exits non-zero otherwise, or if the
/// kernel's geometric-mean fault-sim speedup falls below 3x). Per-cell
/// `session.fault_sim` wall times and speedups land in
/// `BENCH_10.json`'s `comparison` object with `--json`.
fn bench10() {
    banner("Flat SoA kernel study: tape kernel vs graph walker, verdicts bit-identical");
    let mut designs = paper_designs();
    designs.push(filters::designs::lowpass_mini().expect("LP-MINI elaborates"));
    let mut rows = Vec::new();
    let mut cell_entries = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    for d in &designs {
        let session = BistSession::new(d).expect("session");
        // LP-MINI is the sub-second sanity anchor; the paper designs
        // run the full Table 4 generator roster.
        let gens: &[&str] = if d.name() == "LP-MINI" { &["LFSR-D"] } else { &SECTION8_GENERATORS };
        for gen_name in gens {
            let config = run_config_mode(SECTION8_VECTORS, ResponseCheck::Signature);
            let mut gen = generator(gen_name);
            let walked =
                run_session(&session, &mut *gen, &config.clone().with_engine(SimEngine::Walker));
            let mut gen = generator(gen_name);
            let kernel = run_session(&session, &mut *gen, &config.with_engine(SimEngine::Kernel));
            let identical = walked.result.detection_cycles() == kernel.result.detection_cycles()
                && walked.result.signatures() == kernel.result.signatures()
                && walked.signature == kernel.signature
                && walked.artifact.coverage == kernel.artifact.coverage
                && walked.artifact.aliased == kernel.artifact.aliased;
            if !identical {
                eprintln!(
                    "bench10 failed on {} x {gen_name}: kernel verdicts diverge from the walker",
                    d.name()
                );
                std::process::exit(1);
            }
            let walker_ms = stage_ms(&walked, "session.fault_sim");
            let kernel_ms = stage_ms(&kernel, "session.fault_sim");
            let speedup = walker_ms / kernel_ms.max(1e-9);
            speedups.push(speedup);
            rows.push(vec![
                d.name().to_string(),
                gen_name.to_string(),
                format!("{:.2}%", 100.0 * kernel.artifact.coverage),
                format!("{walker_ms:.0}"),
                format!("{kernel_ms:.0}"),
                format!("{speedup:.1}x"),
            ]);
            cell_entries.push(
                obs::JsonValue::object()
                    .push("design", d.name())
                    .push("generator", gen_name.to_string())
                    .push("mode", "signature")
                    .push("walker_sim_ms", walker_ms)
                    .push("kernel_sim_ms", kernel_ms)
                    .push("speedup", speedup)
                    .push("verdicts_identical", identical),
            );
        }
    }
    println!(
        "{}",
        table::render(&["Des.", "gen", "coverage", "walker ms", "kernel ms", "speedup"], &rows)
    );
    println!("'walker ms'/'kernel ms' are the fault-sim stage wall times of the same");
    println!("campaign under the two engines; verdicts (detection cycles, per-fault");
    println!("signatures, good signature, coverage) were verified bit-identical per cell.");
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!(
        "\n  kernel speedup: min {min:.2}x, geomean {geomean:.2}x over {} cells",
        speedups.len()
    );
    if geomean < 3.0 {
        eprintln!("bench10 failed: geomean kernel speedup {geomean:.2}x is below the 3x gate");
        std::process::exit(1);
    }
    bist_bench::artifacts::set_comparison(
        obs::JsonValue::object()
            .push("study", "soa_kernel")
            .push("vectors", SECTION8_VECTORS as u64)
            .push("mode", "signature")
            .push("min_speedup", min)
            .push("geomean_speedup", geomean)
            .push("cells", obs::JsonValue::Array(cell_entries)),
    );
}

/// The `kernel` CI cell (tier1.sh): the LP-MINI campaign must produce
/// bit-identical verdicts under the graph walker and the flat tape
/// kernel in both response-check modes (detection cycles, per-fault
/// signatures, good signature, coverage), and the compiled tape must
/// be a non-trivial straight-line program. Sub-second; exits non-zero
/// otherwise.
fn kernel_smoke() {
    banner("CI kernel cell: LP-MINI walker vs tape kernel, bit-identical in both modes");
    let d = filters::designs::lowpass_mini().expect("LP-MINI elaborates");
    let session = BistSession::new(&d).expect("session");
    let vectors = 1024;
    for mode in [ResponseCheck::Trace, ResponseCheck::Signature] {
        let mode_name = match mode {
            ResponseCheck::Trace => "trace",
            ResponseCheck::Signature => "signature",
        };
        let config = run_config_mode(vectors, mode);
        let mut gen = generator("LFSR-D");
        let walked =
            run_session(&session, &mut *gen, &config.clone().with_engine(SimEngine::Walker));
        let mut gen = generator("LFSR-D");
        let kernel = run_session(&session, &mut *gen, &config.with_engine(SimEngine::Kernel));
        if walked.result.detection_cycles() != kernel.result.detection_cycles()
            || walked.result.signatures() != kernel.result.signatures()
            || walked.signature != kernel.signature
            || walked.artifact.coverage != kernel.artifact.coverage
        {
            eprintln!("kernel cell failed: {mode_name}-mode verdicts diverge between engines");
            std::process::exit(1);
        }
        println!(
            "  {mode_name}: {} faults, coverage {:.2}%, verdicts bit-identical",
            kernel.artifact.total_faults,
            100.0 * kernel.artifact.coverage
        );
    }
    let tape = faultsim::Tape::compile(d.netlist());
    if tape.op_count() == 0 || tape.segment_count() == 0 {
        eprintln!("kernel cell failed: LP-MINI compiled to an empty tape");
        std::process::exit(1);
    }
    println!(
        "kernel cell: tape {} op(s) in {} segment(s) over {} slot plane(s), both modes identical",
        tape.op_count(),
        tape.segment_count(),
        tape.slot_count(),
    );
}

/// The `structure` CI cell (tier1.sh): the LP-MINI collapse run must
/// be bit-identical to the plain run (detection cycles, good
/// signature, coverage), attach a census whose class count is strictly
/// below the site count, and carry the `L701` collapse lint at
/// admission. Sub-second; exits non-zero otherwise.
fn structure_smoke() {
    banner("CI structure cell: LP-MINI collapsed vs plain, bit-identical + census gates");
    let d = filters::designs::lowpass_mini().expect("LP-MINI elaborates");
    let session = BistSession::new(&d).expect("session");
    let vectors = 1024;
    let config = run_config(vectors);
    let mut gen = generator("LFSR-D");
    let plain = run_session(&session, &mut *gen, &config);
    let mut gen = generator("LFSR-D");
    let collapsed = run_session(&session, &mut *gen, &config.with_collapse(true));
    if plain.result.detection_cycles() != collapsed.result.detection_cycles()
        || plain.signature != collapsed.signature
        || plain.artifact.coverage != collapsed.artifact.coverage
    {
        eprintln!("structure cell failed: collapsed verdicts diverge from the plain run");
        std::process::exit(1);
    }
    let census = collapsed.artifact.collapse.expect("collapse runs attach their census");
    println!(
        "  census: {} raw line(s) -> {} site(s) -> {} class(es) ({} prime), \
         {:.1}% reduction vs raw, dominator depth {}",
        census.raw_lines,
        census.sites_before,
        census.classes_after,
        census.prime_classes,
        100.0 * census.reduction_vs_raw,
        census.dominator_depth,
    );
    if census.classes_after >= census.sites_before || census.reduction_vs_raw <= 0.25 {
        eprintln!(
            "structure cell failed: census did not shrink the universe ({} -> {}, {:.3} vs raw)",
            census.sites_before, census.classes_after, census.reduction_vs_raw
        );
        std::process::exit(1);
    }
    let spec = CampaignSpec::new("LP-MINI", "LFSR-D", vectors).with_collapse(true);
    let diags = lint::admission_lint(&spec, None).expect("LP-MINI admits");
    if !diags.iter().any(|d| d.code == "L701") {
        eprintln!("structure cell failed: admission lint lacks the L701 collapse census");
        std::process::exit(1);
    }
    println!(
        "structure cell: verdicts bit-identical, {} machine(s) saved, L7xx attached ({})",
        census.sites_before - census.classes_after,
        lint_tally(&diags)
    );
}

/// The `sat` CI cell (tier1.sh): LP-MINI's netlist must get a
/// machine-checked equivalence certificate against its behavioral
/// model, and a sample of the symmetric design's screen candidates
/// must prove redundant with the witnesses of its detectable faults
/// replaying through the fault simulator. Sub-second; exits non-zero
/// on any refutation.
fn sat_smoke() {
    banner("CI SAT cell: LP-MINI equivalence certificate + symmetric redundancy proofs");
    let d = filters::designs::lowpass_mini().expect("LP-MINI elaborates");
    let report = sat::check_equivalence(&d);
    println!(
        "  equivalence {}: {} ({} lemmas, {} range obligations, {} conflicts)",
        report.design,
        if report.proved { "proved" } else { "REFUTED" },
        report.lemmas_proved,
        report.range_obligations,
        report.stats.conflicts,
    );
    if !report.proved {
        eprintln!(
            "sat cell failed: equivalence refuted at layer {}",
            report.failure.as_deref().unwrap_or("?")
        );
        std::process::exit(1);
    }

    let sym = filters::designs::lowpass_symmetric().expect("LP-SYM elaborates");
    let session = BistSession::new(&sym).expect("session");
    let universe = session.universe();
    let input_bits = sym.spec().input_bits;
    let screen = atpg::untestable_faults(sym.netlist(), universe, input_bits);
    let specs: Vec<sat::FaultSpec> = screen
        .iter()
        .take(5)
        .map(|&id| {
            let site = universe.site(id);
            sat::FaultSpec { node: site.node, cell: site.cell, fault: site.representative }
        })
        .collect();
    if specs.is_empty() {
        eprintln!("sat cell inconclusive: the symmetric screen yielded no candidates");
        std::process::exit(1);
    }
    let outcome =
        sat::prove_faults(sym.netlist(), input_bits, &specs, &sat::PruneConfig::default());
    println!(
        "  {}: {}/{} screen candidates proven redundant ({} conflicts)",
        sym.name(),
        outcome.redundant,
        specs.len(),
        outcome.stats.conflicts,
    );
    if outcome.redundant != specs.len() {
        eprintln!(
            "sat cell failed: {} of {} screen candidates not proven redundant",
            specs.len() - outcome.redundant,
            specs.len()
        );
        std::process::exit(1);
    }
    println!("sat cell: certificate proved, all sampled candidates UNSAT");
}

/// The `atpg` CI cell (tier1.sh): LP-MINI's LFSR-D residue must be
/// fully resolved by the deterministic top-off — every residual fault
/// either detected by the verified seed plan or proven untestable,
/// none unresolved, i.e. 100% coverage of the testable universe.
/// Exits non-zero otherwise.
fn atpg_smoke() {
    banner("CI ATPG cell: LP-MINI residue -> deterministic top-off -> zero unresolved");
    let d = filters::designs::lowpass_mini().expect("LP-MINI elaborates");
    let session = BistSession::new(&d).expect("session");
    let config = run_config(256).with_top_off(bist_core::TopOffConfig::default());
    let mut gen = generator("LFSR-D");
    let run = run_session(&session, &mut *gen, &config);
    let report = run.artifact.topoff.expect("top-off runs attach their report");
    println!(
        "  residue {}: {} detected / {} untestable / {} unresolved; \
         {} seed(s) + {} stored = {} bits ({} screened pre-sim)",
        report.residue,
        report.detected,
        report.untestable,
        report.unresolved,
        report.seeds,
        report.stored_patterns,
        report.seed_bits + report.stored_bits,
        report.screened_untestable,
    );
    if report.residue == 0 {
        eprintln!("atpg cell inconclusive: the campaign left no residue to top off");
        std::process::exit(1);
    }
    if report.detected + report.untestable + report.unresolved != report.residue {
        eprintln!("atpg cell failed: verdicts do not partition the residue");
        std::process::exit(1);
    }
    if report.unresolved != 0 {
        eprintln!(
            "atpg cell failed: {} residual fault(s) neither detected nor proven untestable",
            report.unresolved
        );
        std::process::exit(1);
    }
    println!(
        "atpg cell: 100% of testable faults covered (campaign + top-off), {} proven untestable",
        report.untestable + report.screened_untestable
    );
}

/// The `smoke` CI cell (tier1.sh): the gated roster — LP-MINI under all
/// four Section 8 generators — must produce *identical* verdicts in
/// trace and signature mode with zero aliased faults, and the trace
/// path's separately computed good signature must equal the one the
/// fault simulator folded on the fly. Exits non-zero on any mismatch.
fn smoke() {
    banner("CI smoke cell: signature mode vs trace mode on the gated roster (LP-MINI)");
    let d = filters::designs::lowpass_mini().expect("LP-MINI elaborates");
    let session = BistSession::new(&d).expect("session");
    let vectors = 1024;
    let mut failures = 0usize;
    for name in SECTION8_GENERATORS {
        let (trace, _) = timed_run(&session, name, vectors, ResponseCheck::Trace);
        let (signed, _) = timed_run(&session, name, vectors, ResponseCheck::Signature);
        let mut verdict = "ok";
        if trace.result.detection_cycles() != signed.result.detection_cycles() {
            verdict = "VERDICT MISMATCH";
            failures += 1;
        } else if signed.artifact.aliased != 0 {
            verdict = "ALIASED FAULTS";
            failures += 1;
        } else if trace.signature != signed.signature {
            verdict = "SIGNATURE MISMATCH";
            failures += 1;
        }
        println!(
            "  {:7} missed {:4} / {:4}  aliased {}  signature {:#06x} / {:#06x}  {}",
            name,
            trace.missed(),
            signed.missed(),
            signed.artifact.aliased,
            trace.signature,
            signed.signature,
            verdict
        );
    }
    if failures > 0 {
        eprintln!("smoke cell failed: {failures} roster cell(s) diverged");
        std::process::exit(1);
    }
    println!("smoke cell: {} roster cells bit-identical, zero aliasing", SECTION8_GENERATORS.len());
}

// ------------------------------------------------------------------ util

/// The accumulation adder of tap `k` (falling back to the nearest tap
/// with an accumulator).
fn tap_acc(d: &FilterDesign, k: usize) -> rtl::NodeId {
    d.tap_accumulator(k)
        .or_else(|| {
            (1..10).find_map(|off| {
                d.tap_accumulator(k + off).or_else(|| d.tap_accumulator(k.saturating_sub(off)))
            })
        })
        .expect("some tap near k has an accumulator")
}
