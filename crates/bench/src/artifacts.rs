//! Campaign-level artifact collection for the experiments binary.
//!
//! Every [`crate::run_experiment`] call records its run's
//! [`RunArtifact`] here and reports its metrics into a shared campaign
//! [`Registry`]. When the binary was invoked with `--json <path>`, the
//! accumulated artifacts are written out as one `BENCH_*.json`
//! document at exit — the machine-readable performance trajectory of
//! the repository (schema documented in `EXPERIMENTS.md`).

use obs::{JsonValue, Registry, RunArtifact};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Schema version of the `BENCH_*.json` document (the per-run entries
/// carry their own [`obs::ARTIFACT_SCHEMA`]).
pub const BENCH_SCHEMA: u32 = 1;

static COLLECTED: Mutex<Vec<RunArtifact>> = Mutex::new(Vec::new());
static COMPARISON: Mutex<Option<JsonValue>> = Mutex::new(None);
static CAMPAIGN: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide campaign registry: run-level metrics from every
/// experiment accumulate here (counters add, spans append).
pub fn campaign() -> Arc<Registry> {
    Arc::clone(CAMPAIGN.get_or_init(|| Arc::new(Registry::new())))
}

/// Records one run's artifact into the campaign collection.
pub fn record(artifact: RunArtifact) {
    COLLECTED.lock().expect("artifact lock").push(artifact);
}

/// A copy of every artifact recorded so far, in execution order.
pub fn collected() -> Vec<RunArtifact> {
    COLLECTED.lock().expect("artifact lock").clone()
}

/// Attaches an experiment-level comparison object (e.g. the `bench5`
/// trace-vs-signature summary) that [`bench_document`] emits as a
/// top-level `"comparison"` field.
pub fn set_comparison(comparison: JsonValue) {
    *COMPARISON.lock().expect("comparison lock") = Some(comparison);
}

/// Builds the `BENCH_*.json` document for one experiment invocation:
///
/// ```json
/// {
///   "schema": 1,
///   "suite": "experiments",
///   "experiment": "table4",
///   "threads": 8,
///   "runs": [ ...one RunArtifact object per BIST run... ],
///   "metrics": { "counters": {...}, "histograms": {...}, "spans": [...] }
/// }
/// ```
pub fn bench_document(experiment: &str) -> JsonValue {
    let threads = faultsim::SimOptions::new()
        .with_threads(crate::run_config(0).threads())
        .effective_threads();
    let runs = JsonValue::Array(collected().iter().map(RunArtifact::to_json).collect());
    let mut v = JsonValue::object()
        .push("schema", BENCH_SCHEMA)
        .push("suite", "experiments")
        .push("experiment", experiment)
        .push("threads", threads)
        .push("runs", runs);
    if let Some(comparison) = COMPARISON.lock().expect("comparison lock").clone() {
        v = v.push("comparison", comparison);
    }
    v.push("metrics", campaign().snapshot().to_json())
}

/// Writes the bench document and returns the path actually written:
/// a directory path (or one ending in a separator) gets the canonical
/// `BENCH_<experiment>.json` name inside it, anything else is used
/// verbatim.
pub fn write_bench_json(experiment: &str, path: &Path) -> io::Result<PathBuf> {
    let target = if path.is_dir() {
        path.join(format!("BENCH_{experiment}.json"))
    } else {
        path.to_path_buf()
    };
    std::fs::write(&target, bench_document(experiment).to_json_pretty())?;
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_carries_recorded_runs_and_campaign_metrics() {
        // One test mutates the process-global state to keep ordering
        // deterministic under the parallel test runner.
        let mut artifact = RunArtifact::new("LP", "LFSR-D");
        artifact.vectors = 64;
        artifact.coverage = 0.5;
        record(artifact.clone());
        campaign().counter("faultsim.shards").add(7);

        assert!(collected().contains(&artifact));
        let doc = bench_document("unit_test").to_json();
        assert!(doc.contains("\"suite\":\"experiments\""), "{doc}");
        assert!(doc.contains("\"experiment\":\"unit_test\""), "{doc}");
        assert!(doc.contains("\"design\":\"LP\""), "{doc}");
        assert!(doc.contains("\"threads\":"), "{doc}");
        assert!(doc.contains("\"faultsim.shards\":"), "{doc}");
        assert!(!doc.contains("\"comparison\""), "absent until set: {doc}");
        set_comparison(JsonValue::object().push("speedup", 1.5));
        let with = bench_document("unit_test").to_json();
        assert!(with.contains("\"comparison\":{\"speedup\":1.5}"), "{with}");

        // Directory targets resolve to the canonical artifact name.
        let dir = std::env::temp_dir();
        let written = write_bench_json("unit_test", &dir).unwrap();
        assert!(written.ends_with("BENCH_unit_test.json"), "{written:?}");
        let text = std::fs::read_to_string(&written).unwrap();
        assert!(text.starts_with("{\n  \"schema\": 1"), "{text}");
        let _ = std::fs::remove_file(&written);
    }
}
