//! Minimal fixed-width text-table rendering for experiment output.

/// Renders a table: header row plus data rows, columns padded to the
/// widest cell.
///
/// # Example
///
/// ```
/// let t = bist_bench::table::render(
///     &["design", "misses"],
///     &[vec!["LP".into(), "519".into()]],
/// );
/// assert!(t.contains("design"));
/// assert!(t.contains("LP"));
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            let pad = w - c.chars().count();
            line.push(' ');
            line.push_str(c);
            line.push_str(&" ".repeat(pad + 1));
            line.push('|');
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(
            &["a", "long-header"],
            &[vec!["x".into(), "1".into()], vec!["yyyy".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same display width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w), "{t}");
    }

    #[test]
    fn empty_rows_render_header_only() {
        let t = render(&["h"], &[]);
        assert_eq!(t.lines().count(), 2);
    }
}
