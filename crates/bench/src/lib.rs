//! Shared experiment infrastructure: design construction, generator
//! registry, text tables and ASCII plots.
//!
//! The `experiments` binary in this crate regenerates every table and
//! figure of the paper (see `DESIGN.md`'s per-experiment index and
//! `EXPERIMENTS.md` for recorded results); the Criterion benches
//! measure the performance of the underlying engines.

pub mod artifacts;
pub mod plot;
pub mod table;

use bist_core::session::{BistRun, BistSession, RunConfig};
use filters::FilterDesign;
use tpg::{Decorrelated, Lfsr1, Lfsr2, MaxVariance, Mixed, Ramp, ShiftDirection, TestGenerator};

/// The paper's generator roster for the Section 8 experiments.
pub const SECTION8_GENERATORS: [&str; 4] = ["LFSR-1", "LFSR-D", "LFSR-M", "Ramp"];

/// Builds a 12-bit generator by display name.
///
/// # Panics
///
/// Panics on an unknown name (callers pass compile-time names).
pub fn generator(name: &str) -> Box<dyn TestGenerator> {
    match name {
        "LFSR-1" => Box::new(Lfsr1::new(12, ShiftDirection::LsbToMsb).expect("12-bit LFSR")),
        "LFSR-2" => {
            Box::new(Lfsr2::new(12, tpg::polynomials::PAPER_TYPE2_POLY).expect("paper poly"))
        }
        "LFSR-D" => {
            Box::new(Decorrelated::maximal(12, ShiftDirection::LsbToMsb).expect("12-bit LFSR"))
        }
        "LFSR-M" => Box::new(MaxVariance::maximal(12).expect("12-bit LFSR")),
        "Ramp" => Box::new(Ramp::new(12).expect("12-bit ramp")),
        "Ideal" => Box::new(tpg::IdealWhite::new(12).expect("12-bit white")),
        other => panic!("unknown generator {other}"),
    }
}

/// The mixed scheme of the paper's Section 9: LFSR-1 for
/// `switch_after` vectors, then LFSR-M.
pub fn mixed_generator(switch_after: u64) -> Box<dyn TestGenerator> {
    Box::new(Mixed::lfsr1_then_maxvar(12, switch_after).expect("12-bit mixed"))
}

/// Elaborates the three paper designs (LP, BP, HP). Building all three
/// takes well under a second.
pub fn paper_designs() -> Vec<FilterDesign> {
    filters::designs::paper_designs().expect("paper designs elaborate")
}

/// Runs one generator against one design and returns the run.
///
/// Test length comes from the config; MISR width, stage schedule and
/// thread count follow it too (see [`run_config`] for the experiment
/// harness's defaults). Every run reports into the process-wide
/// campaign registry and records its [`obs::RunArtifact`] for the
/// `--json` output (see [`artifacts`]).
pub fn run_experiment(design: &FilterDesign, gen_name: &str, config: &RunConfig) -> BistRun {
    let session = BistSession::new(design).expect("paper designs build valid sessions");
    let mut gen = generator(gen_name);
    run_session(&session, &mut *gen, config)
}

/// Runs one generator against an existing session, reporting into the
/// campaign registry and recording the run's artifact — the
/// experiments binary routes every BIST run through here so `--json`
/// sees the complete campaign.
///
/// # Panics
///
/// Panics on a [`bist_core::session::SessionError`] (the harness only
/// pairs registry generators with the 12-bit paper designs).
pub fn run_session(
    session: &BistSession<'_>,
    gen: &mut dyn TestGenerator,
    config: &RunConfig,
) -> BistRun {
    let config = config.clone().with_metrics(artifacts::campaign());
    let run = session.run(gen, &config).expect("registry generators match the 12-bit designs");
    artifacts::record(run.artifact.clone());
    run
}

/// The experiment harness's run configuration: `vectors` test patterns
/// with the defaults (16-bit MISR, default schedule), honoring a
/// `BIST_THREADS` environment override for the fault-simulation worker
/// count (unset or `0` = one thread per core).
pub fn run_config(vectors: usize) -> RunConfig {
    let threads =
        std::env::var("BIST_THREADS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(0);
    RunConfig::new(vectors).with_threads(threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_all_generators() {
        for name in SECTION8_GENERATORS.iter().chain(["LFSR-2", "Ideal"].iter()) {
            let mut g = generator(name);
            assert_eq!(g.width(), 12);
            g.next_word();
        }
        let mut m = mixed_generator(4);
        assert_eq!(m.width(), 12);
        m.next_word();
    }

    #[test]
    #[should_panic(expected = "unknown generator")]
    fn unknown_generator_panics() {
        generator("nope");
    }

    #[test]
    fn run_config_carries_the_requested_test_length() {
        let cfg = run_config(777);
        assert_eq!(cfg.vectors(), 777);
        assert_eq!(cfg.misr_width(), 16);
    }
}
