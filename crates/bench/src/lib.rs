//! Shared experiment infrastructure: design construction, generator
//! registry, text tables and ASCII plots.
//!
//! The `experiments` binary in this crate regenerates every table and
//! figure of the paper (see `DESIGN.md`'s per-experiment index and
//! `EXPERIMENTS.md` for recorded results); the Criterion benches
//! measure the performance of the underlying engines.

#![forbid(unsafe_code)]

pub mod artifacts;
pub mod plot;
pub mod table;

use bist_core::campaign::CampaignSpec;
use bist_core::session::{BistRun, BistSession, ResponseCheck, RunConfig, SessionError};
use filters::FilterDesign;
use tpg::{Mixed, TestGenerator};

/// The paper's generator roster for the Section 8 experiments.
pub const SECTION8_GENERATORS: [&str; 4] = ["LFSR-1", "LFSR-D", "LFSR-M", "Ramp"];

/// Builds a 12-bit generator by display name, via the campaign
/// registry (so the name set here and in [`bist_core::campaign`] can
/// never drift apart).
///
/// # Errors
///
/// [`SessionError::InvalidConfig`] for an unknown name, listing the
/// known ones — CLI callers print this as a usage message.
pub fn try_generator(name: &str) -> Result<Box<dyn TestGenerator>, SessionError> {
    bist_core::campaign::build_generator(name)
}

/// Builds a 12-bit generator by display name.
///
/// # Panics
///
/// Panics on an unknown name (callers pass compile-time names; use
/// [`try_generator`] for user-supplied ones).
pub fn generator(name: &str) -> Box<dyn TestGenerator> {
    try_generator(name).unwrap_or_else(|e| panic!("{e}"))
}

/// The mixed scheme of the paper's Section 9: LFSR-1 for
/// `switch_after` vectors, then LFSR-M.
pub fn mixed_generator(switch_after: u64) -> Box<dyn TestGenerator> {
    Box::new(Mixed::lfsr1_then_maxvar(12, switch_after).expect("12-bit mixed"))
}

/// Elaborates the three paper designs (LP, BP, HP). Building all three
/// takes well under a second.
pub fn paper_designs() -> Vec<FilterDesign> {
    filters::designs::paper_designs().expect("paper designs elaborate")
}

/// Runs one generator against one design and returns the run.
///
/// Test length comes from the config; MISR width, stage schedule and
/// thread count follow it too (see [`run_config`] for the experiment
/// harness's defaults). Every run reports into the process-wide
/// campaign registry and records its [`obs::RunArtifact`] for the
/// `--json` output (see [`artifacts`]).
pub fn run_experiment(design: &FilterDesign, gen_name: &str, config: &RunConfig) -> BistRun {
    let session = BistSession::new(design).expect("paper designs build valid sessions");
    let mut gen = generator(gen_name);
    run_session(&session, &mut *gen, config)
}

/// Runs one generator against an existing session, reporting into the
/// campaign registry and recording the run's artifact — the
/// experiments binary routes every BIST run through here so `--json`
/// sees the complete campaign.
///
/// # Panics
///
/// Panics on a [`bist_core::session::SessionError`] (the harness only
/// pairs registry generators with the 12-bit paper designs).
pub fn run_session(
    session: &BistSession<'_>,
    gen: &mut dyn TestGenerator,
    config: &RunConfig,
) -> BistRun {
    let config = config.clone().with_metrics(artifacts::campaign());
    let run = session.run(gen, &config).expect("registry generators match the 12-bit designs");
    artifacts::record(run.artifact.clone());
    run
}

/// Static lint summary for one experiment grid cell — the
/// generator-shaped testability (`L1xx`), spectral-compatibility
/// (`L2xx`), campaign-spec (`L3xx`) and response-compaction (`L4xx`)
/// passes, without a single simulated vector. Returns compact `E/W/I`
/// tallies like `"1E 2W 4I"` so the tables can carry a per-cell static
/// verdict next to the measured miss counts.
pub fn cell_lint(design: &FilterDesign, gen_name: &str, vectors: usize) -> String {
    cell_lint_mode(design, gen_name, vectors, ResponseCheck::Trace)
}

/// [`cell_lint`] for an explicit response-check mode, so
/// signature-mode tables carry their `L4xx` verdicts too.
pub fn cell_lint_mode(
    design: &FilterDesign,
    gen_name: &str,
    vectors: usize,
    mode: ResponseCheck,
) -> String {
    let mut diags = lint::lint_pairing(design, gen_name, lint::DEFAULT_BINS);
    let spec = CampaignSpec::new(design.name(), gen_name, vectors).with_mode(mode);
    diags.extend(lint::campaign::lint_spec(design, &spec, None));
    diags.extend(lint::aliasing::lint_aliasing(design, &spec));
    lint_tally(&diags)
}

/// The compact per-cell `E/W/I` tally (`"1E 2W 4I"`). Both output
/// paths — the text tables and the `--json` comparison objects — go
/// through this one formatter, so the two renderings of a cell's
/// verdict can never drift apart.
pub fn lint_tally(diags: &[obs::Diagnostic]) -> String {
    let (errors, warnings, infos) = obs::diag::severity_counts(diags);
    format!("{errors}E {warnings}W {infos}I")
}

/// The experiment harness's run configuration: `vectors` test patterns
/// with the defaults (16-bit MISR, trace-mode response checking,
/// default schedule), honoring a `BIST_THREADS` environment override
/// for the fault-simulation worker count (unset or `0` = one thread
/// per core).
pub fn run_config(vectors: usize) -> RunConfig {
    run_config_mode(vectors, ResponseCheck::Trace)
}

/// [`run_config`] with an explicit response-check mode — what the
/// experiments binary builds under its `--signature` flag.
pub fn run_config_mode(vectors: usize, mode: ResponseCheck) -> RunConfig {
    let threads =
        std::env::var("BIST_THREADS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(0);
    RunConfig::new(vectors).with_threads(threads).with_response_check(mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_all_generators() {
        for name in SECTION8_GENERATORS.iter().chain(["LFSR-2", "Ideal"].iter()) {
            let mut g = generator(name);
            assert_eq!(g.width(), 12);
            g.next_word();
        }
        let mut m = mixed_generator(4);
        assert_eq!(m.width(), 12);
        m.next_word();
    }

    #[test]
    fn unknown_generator_is_a_structured_error_naming_the_registry() {
        let message = match try_generator("nope") {
            Err(e) => e.to_string(),
            Ok(_) => panic!("'nope' must not build"),
        };
        assert!(message.contains("unknown generator 'nope'"), "{message}");
        assert!(message.contains("LFSR-D"), "lists the known names: {message}");
    }

    #[test]
    fn mixed_scheme_builds_by_name_too() {
        let mut m = try_generator("Mixed@2048").expect("registry spells mixed as Mixed@<n>");
        assert_eq!(m.width(), 12);
        m.next_word();
    }

    #[test]
    fn cell_lint_flags_the_incompatible_pairing_statically() {
        let designs = paper_designs();
        let lp = designs.iter().find(|d| d.name() == "LP").expect("LP elaborates");
        // The paper's incompatible cell: Type-1 LFSR energy sits in the
        // lowpass stopband, so the spectral pass reports an error.
        let bad = cell_lint(lp, "LFSR-1", 4096);
        assert!(!bad.starts_with("0E"), "LP x LFSR-1 must carry an error: {bad}");
        // The decorrelated generator is the paper's compatible pick.
        let good = cell_lint(lp, "LFSR-D", 4096);
        assert!(good.starts_with("0E"), "LP x LFSR-D must be error-free: {good}");
    }

    #[test]
    fn lint_tally_formats_the_shared_cell_verdict() {
        use obs::{Diagnostic, Location, Severity};
        assert_eq!(lint_tally(&[]), "0E 0W 0I");
        let diags = vec![
            Diagnostic::new("L201", Severity::Error, Location::Design, "incompatible"),
            Diagnostic::new("L101", Severity::Warn, Location::Design, "headroom"),
            Diagnostic::new("L102", Severity::Warn, Location::Design, "variance"),
            Diagnostic::new("L403", Severity::Info, Location::Design, "dropping"),
        ];
        assert_eq!(lint_tally(&diags), "1E 2W 1I");
        // cell_lint goes through the same formatter.
        let designs = paper_designs();
        let lp = designs.iter().find(|d| d.name() == "LP").expect("LP elaborates");
        let cell = cell_lint(lp, "LFSR-D", 4096);
        assert!(cell.contains("E ") && cell.contains("W ") && cell.ends_with('I'), "{cell}");
    }

    #[test]
    fn run_config_carries_the_requested_test_length() {
        let cfg = run_config(777);
        assert_eq!(cfg.vectors(), 777);
        assert_eq!(cfg.misr_width(), 16);
        assert_eq!(cfg.response_check(), ResponseCheck::Trace);
        let sig = run_config_mode(777, ResponseCheck::Signature);
        assert_eq!(sig.response_check(), ResponseCheck::Signature);
    }

    #[test]
    fn signature_cells_carry_their_compaction_verdict() {
        let designs = paper_designs();
        let lp = designs.iter().find(|d| d.name() == "LP").expect("LP elaborates");
        let trace = cell_lint(lp, "LFSR-D", 4096);
        let sig = cell_lint_mode(lp, "LFSR-D", 4096, ResponseCheck::Signature);
        // Signature mode adds the informational L403 dropping note but
        // no errors on the paper roster.
        assert!(sig.starts_with("0E"), "{sig}");
        assert_ne!(trace, sig, "the L4xx pass must show in the tally");
    }
}
