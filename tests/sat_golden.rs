//! Golden snapshot of the SAT subsystem's certificates: the
//! equivalence-proof summary for every built-in design plus LP-MINI's
//! machine-checked redundant-fault list, byte for byte.
//!
//! These are the subsystem's externally meaningful claims — "this
//! netlist computes its behavioral model" and "these exact faults are
//! provably untestable" — so their content is pinned: any change to
//! the encoder, the behavioral normal form, the justifier's residue
//! verdicts, or the fault-collapsing order must re-bless this file and
//! be reviewed as a behavior change, not slip through as noise.
//!
//! Regenerate with `BLESS=1 cargo test -p bist-bench --test sat_golden`.

use atpg::Verdict;
use faultsim::{FaultUniverse, ParallelFaultSimulator};
use filters::FilterDesign;
use rtl::reachability::Reachability;
use std::fmt::Write as _;
use tpg::{Lfsr1, ShiftDirection, TestGenerator};

fn equiv_line(design: &FilterDesign) -> String {
    let report = sat::check_equivalence(design);
    format!(
        "equiv {} {} {} spec_terms {} ranges {} lemmas {} sim_steps {}",
        report.design,
        report.architecture,
        if report.proved { "proved" } else { "REFUTED" },
        report.spec_terms,
        report.range_obligations,
        report.lemmas_proved,
        report.sim_steps_checked,
    )
}

/// Renders the pinned pipeline: equivalence certificates for the four
/// designs, then LP-MINI's redundant-fault list — the faults of a
/// 256-vector Type 1 LFSR campaign's residue that the justifier calls
/// untestable, each re-proven UNSAT by the per-fault miter.
fn render_certificates() -> String {
    let mut out = String::new();
    let mut w = |line: String| writeln!(out, "{line}").expect("string write");
    w("# SAT certificates: equivalence proofs + LP-MINI redundant faults".into());
    for design in [
        filters::designs::lowpass_mini().expect("LP-MINI"),
        filters::designs::lowpass().expect("LP"),
        filters::designs::bandpass().expect("BP"),
        filters::designs::highpass().expect("HP"),
    ] {
        w(equiv_line(&design));
    }

    let design = filters::designs::lowpass_mini().expect("LP-MINI");
    let netlist = design.netlist();
    let input_bits = design.spec().input_bits;
    let reach = Reachability::analyze(netlist, input_bits);
    let universe = FaultUniverse::enumerate_pruned(netlist, design.claimed_ranges(), &reach);
    let mut lfsr = Lfsr1::new(input_bits, ShiftDirection::LsbToMsb).unwrap();
    let inputs: Vec<i64> = (0..256).map(|_| design.align_input(lfsr.next_word())).collect();
    let residue = ParallelFaultSimulator::new(netlist, &universe).run(&inputs).missed();
    let top = atpg::top_off(
        netlist,
        &universe,
        &residue,
        input_bits,
        &atpg::TopOffConfig { block_len: 64, max_seeds: 8 },
    );
    w(format!("# LP-MINI LFSR-1 @256 residue {}", residue.len()));
    for (id, verdict) in &top.verdicts {
        if !matches!(verdict, Verdict::Untestable) {
            continue;
        }
        let site = universe.site(*id);
        let spec = sat::FaultSpec { node: site.node, cell: site.cell, fault: site.representative };
        let outcome = sat::prove_faults(
            netlist,
            input_bits,
            &[spec],
            &sat::PruneConfig { max_conflicts: 100_000 },
        );
        let proof = match &outcome.verdicts[0].1 {
            sat::FaultVerdict::Redundant => "UNSAT".to_string(),
            sat::FaultVerdict::Detectable { witness } => panic!(
                "engine disagreement: justifier-untestable fault {} got a \
                 {}-step SAT witness",
                id.0,
                witness.len()
            ),
            sat::FaultVerdict::Unknown => "unknown".to_string(),
        };
        w(format!(
            "redundant {} {}[cell {}] {:?} s-a-{} proof {proof}",
            id.0,
            site.node,
            site.cell,
            site.representative.line,
            u8::from(site.representative.stuck_one),
        ));
    }
    out
}

#[test]
fn equivalence_certificates_and_redundant_faults_are_byte_stable() {
    let actual = render_certificates();
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sat_certs.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {}: {e} (run with BLESS=1)", path.display())
    });
    assert_eq!(
        actual,
        expected,
        "the SAT certificate summary drifted from {}; re-bless with BLESS=1 \
         only if the encoder/justifier change is intentional",
        path.display()
    );
    // Every equivalence certificate in the snapshot is a *proof* —
    // a refutation must never be blessed.
    assert!(!actual.contains("REFUTED"));
    assert!(actual.contains("proof UNSAT"), "LP-MINI carries at least one UNSAT proof");
}
