//! Timed scaling check for the sharded fault simulator: the paper's
//! 60-tap lowpass under a full Section 8 test length must run at least
//! 2x faster with 4 worker threads than with 1, with bit-identical
//! results.
//!
//! Ignored by default: it needs a release build, a multi-core machine
//! (>= 4 cores) and about a minute of wall clock. Run with
//! `cargo test --release --test threading_speedup -- --ignored`.

use bist_core::session::{BistSession, RunConfig};
use std::time::Instant;

fn timed_run(
    session: &BistSession<'_>,
    threads: usize,
) -> (std::time::Duration, Vec<Option<u32>>, usize) {
    let config = RunConfig::new(8192).with_threads(threads);
    let mut gen =
        tpg::Decorrelated::maximal(12, tpg::ShiftDirection::LsbToMsb).expect("generator");
    let start = Instant::now();
    let run = session.run(&mut gen, &config).expect("run");
    (start.elapsed(), run.result.detection_cycles().to_vec(), run.missed())
}

#[test]
#[ignore = "heavy: needs >=4 cores and a release build; ~1 min of fault simulation"]
fn four_threads_at_least_double_single_thread_throughput() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    assert!(cores >= 4, "speedup check needs >=4 cores, this machine reports {cores}");

    let design = filters::designs::lowpass().expect("paper LP design");
    let session = BistSession::new(&design).expect("session");

    // Warm-up pass so page faults and allocator growth don't bias the
    // single-threaded measurement.
    let _ = timed_run(&session, 1);

    let (t1, cycles1, missed1) = timed_run(&session, 1);
    let (t4, cycles4, missed4) = timed_run(&session, 4);

    assert_eq!(cycles1, cycles4, "sharding changed the detection cycles");
    assert_eq!(missed1, missed4);

    let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 2.0,
        "4-thread speedup only {speedup:.2}x (1 thread: {t1:?}, 4 threads: {t4:?})"
    );
}
