//! Timed scaling check for the sharded fault simulator: the paper's
//! 60-tap lowpass under a full Section 8 test length must run at least
//! 2x faster with 4 worker threads than with 1, with bit-identical
//! results.
//!
//! The measured speedup is reported through an [`obs::Registry`]
//! (spans per timed pass, gauges for the ratio) and written to
//! `target/BENCH_threading_speedup.json` so the opt-in CI job
//! (`.github/workflows/speedup.yml`) can upload it as an artifact.
//! Set `SPEEDUP_JSON` to redirect the output path.
//!
//! Ignored by default: it needs a release build, a multi-core machine
//! (>= 4 cores) and about a minute of wall clock. Run with
//! `cargo test --release --test threading_speedup -- --ignored`.

use bist_core::session::{BistSession, RunConfig};
use obs::{JsonValue, Registry};
use std::sync::Arc;

fn timed_run(
    session: &BistSession<'_>,
    registry: &Arc<Registry>,
    threads: usize,
) -> (f64, Vec<Option<u32>>, usize) {
    let config = RunConfig::new(8192).with_threads(threads).with_metrics(Arc::clone(registry));
    let mut gen = tpg::Decorrelated::maximal(12, tpg::ShiftDirection::LsbToMsb).expect("generator");
    let span = obs::span!(registry, "speedup.threads{}", threads);
    let run = session.run(&mut gen, &config).expect("run");
    let millis = span.finish();
    (millis, run.result.detection_cycles().to_vec(), run.missed())
}

fn artifact_path() -> std::path::PathBuf {
    std::env::var_os("SPEEDUP_JSON")
        .map(Into::into)
        .unwrap_or_else(|| std::path::PathBuf::from("target/BENCH_threading_speedup.json"))
}

#[test]
#[ignore = "heavy: needs >=4 cores and a release build; ~1 min of fault simulation"]
fn four_threads_at_least_double_single_thread_throughput() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    assert!(cores >= 4, "speedup check needs >=4 cores, this machine reports {cores}");

    let design = filters::designs::lowpass().expect("paper LP design");
    let session = BistSession::new(&design).expect("session");
    let registry = Arc::new(Registry::new());

    // Warm-up pass so page faults and allocator growth don't bias the
    // single-threaded measurement (kept out of the registry).
    let _ = timed_run(&session, &Arc::new(Registry::new()), 1);

    let (t1_ms, cycles1, missed1) = timed_run(&session, &registry, 1);
    let (t4_ms, cycles4, missed4) = timed_run(&session, &registry, 4);
    let bit_identical = cycles1 == cycles4 && missed1 == missed4;

    let speedup = t1_ms / t4_ms.max(1e-9);
    registry.set_gauge("speedup.cores", cores as f64);
    registry.set_gauge("speedup.ratio", speedup);

    let snapshot = registry.snapshot();
    let doc = JsonValue::object()
        .push("schema", 1u32)
        .push("suite", "threading_speedup")
        .push("cores", cores as u64)
        .push("vectors", 8192u64)
        .push("threads_1_ms", t1_ms)
        .push("threads_4_ms", t4_ms)
        .push("speedup", speedup)
        .push("bit_identical", bit_identical)
        .push("missed", missed1 as u64)
        .push("metrics", snapshot.to_json());
    let path = artifact_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, doc.to_json_pretty()).expect("write speedup artifact");
    eprintln!("speedup {speedup:.2}x ({t1_ms:.0} ms -> {t4_ms:.0} ms), wrote {}", path.display());

    assert!(bit_identical, "sharding changed the detection results");
    assert!(
        speedup >= 2.0,
        "4-thread speedup only {speedup:.2}x (1 thread: {t1_ms:.0} ms, 4 threads: {t4_ms:.0} ms)"
    );
}
