//! Cross-engine oracle: the SAT redundancy prover, the ATPG
//! untestability screen and the gate-level fault simulator are three
//! independent engines making claims about the same faults. Any
//! disagreement between them is a hard failure:
//!
//! * a SAT witness (a concrete input-word sequence) must make the
//!   faulty machine diverge when replayed through `faultsim` — an
//!   engine sharing no code with the solver's unrolled CNF miter;
//! * a fault proven UNSAT (redundant) must have been flagged by the
//!   exhaustive-cone ATPG screen — a witnessless SAT proof the screen
//!   missed would mean one of the two engines models the netlist wrong;
//! * a fault the screen flagged must never get a SAT witness, and a
//!   fault an actual campaign *detected* must never be proven UNSAT.

use bist_core::BistSession;
use faultsim::{FaultId, FaultUniverse};
use filters::FilterDesign;
use tpg::{collect_words, Decorrelated, ShiftDirection};

/// A small folded (symmetric) design whose trimmed fold adder keeps
/// real screen candidates while proofs stay a few milliseconds each.
fn small_sym_design() -> FilterDesign {
    FilterDesign::elaborate_full(
        filters::FilterSpec {
            name: "T-SYM".into(),
            band: dsp::firdesign::BandKind::Lowpass { cutoff: 0.15 },
            taps: 12,
            input_bits: 12,
            coef_frac_bits: 14,
            max_csd_digits: 3,
            width: 16,
            kaiser_beta: 4.0,
        },
        filters::ScalingPolicy::WorstCase,
        filters::Architecture::Symmetric,
    )
    .unwrap()
}

fn spec_for(universe: &FaultUniverse, id: FaultId) -> sat::FaultSpec {
    let site = universe.site(id);
    sat::FaultSpec { node: site.node, cell: site.cell, fault: site.representative }
}

/// Replays a SAT witness through the fault simulator and reports
/// whether the faulty machine diverged from the good one.
fn faultsim_confirms(
    design: &FilterDesign,
    universe: &FaultUniverse,
    id: FaultId,
    witness: &[i64],
) -> bool {
    let trace = faultsim::inject::trace_fault(design.netlist(), universe, id, witness);
    *trace.error().last().unwrap() != 0
}

#[test]
fn screen_candidates_are_proven_redundant_and_never_witnessed() {
    let design = small_sym_design();
    let session = BistSession::new(&design).unwrap();
    let universe = session.universe();
    let input_bits = design.spec().input_bits;
    let screen = atpg::untestable_faults(design.netlist(), universe, input_bits);
    assert!(!screen.is_empty(), "the folded design must keep screen candidates");

    let specs: Vec<sat::FaultSpec> = screen.iter().map(|&id| spec_for(universe, id)).collect();
    let outcome = sat::prove_faults(
        design.netlist(),
        input_bits,
        &specs,
        &sat::PruneConfig { max_conflicts: 20_000 },
    );
    for (&id, (fault, verdict)) in screen.iter().zip(&outcome.verdicts) {
        match verdict {
            sat::FaultVerdict::Redundant => {}
            sat::FaultVerdict::Unknown => {}
            sat::FaultVerdict::Detectable { witness } => panic!(
                "engine disagreement: screen called fault {id:?} ({}[cell {}]) \
                 untestable but SAT found a {}-step witness",
                fault.node,
                fault.cell,
                witness.len()
            ),
        }
    }
    assert!(outcome.redundant > 0, "at least one candidate proves UNSAT outright");
}

#[test]
fn sat_witnesses_replay_through_the_fault_simulator() {
    let design = small_sym_design();
    let session = BistSession::new(&design).unwrap();
    let universe = session.universe();
    let input_bits = design.spec().input_bits;
    let screen: std::collections::BTreeSet<u32> =
        atpg::untestable_faults(design.netlist(), universe, input_bits)
            .iter()
            .map(|id| id.index() as u32)
            .collect();

    // Sample faults the screen did NOT flag: the miter should find a
    // witness for most of them, and every witness must replay. The
    // screen is conservative, so the miter may still prove some of
    // these UNSAT — that is not a disagreement, but such a fault must
    // then be undetectable by simulation too, which we check below.
    let sampled: Vec<FaultId> = (0..universe.len() as u32)
        .filter(|i| !screen.contains(i))
        .step_by(universe.len() / 40 + 1)
        .map(FaultId)
        .collect();
    assert!(!sampled.is_empty());
    let mut witnessed = 0usize;
    let mut beyond_screen: Vec<FaultId> = Vec::new();
    for &id in &sampled {
        let spec = spec_for(universe, id);
        let outcome = sat::prove_faults(
            design.netlist(),
            input_bits,
            &[spec],
            &sat::PruneConfig { max_conflicts: 20_000 },
        );
        match &outcome.verdicts[0].1 {
            sat::FaultVerdict::Detectable { witness } => {
                assert!(
                    faultsim_confirms(&design, universe, id, witness),
                    "engine disagreement: SAT witness for fault {id:?} does not \
                     diverge when replayed through faultsim"
                );
                witnessed += 1;
            }
            sat::FaultVerdict::Redundant => beyond_screen.push(id),
            sat::FaultVerdict::Unknown => {}
        }
    }
    assert!(witnessed > sampled.len() / 2, "{witnessed}/{} witnessed", sampled.len());

    if !beyond_screen.is_empty() {
        // Redundancy proofs beyond the screen's reach: no simulation
        // may ever detect one of these faults.
        let sub = universe.subset(&beyond_screen);
        let mut generator = Decorrelated::maximal(input_bits, ShiftDirection::LsbToMsb).unwrap();
        let inputs: Vec<i64> =
            collect_words(&mut generator, 512).iter().map(|&w| design.align_input(w)).collect();
        let result = faultsim::ParallelFaultSimulator::new(design.netlist(), &sub).run(&inputs);
        assert_eq!(
            result.detected_count(),
            0,
            "engine disagreement: simulation detected a fault SAT proved UNSAT"
        );
    }
}

#[test]
fn campaign_detected_faults_are_never_proven_redundant() {
    // The strongest possible disagreement: a fault the gate-level
    // campaign *measured* a detection for, "proven" undetectable.
    let design = filters::designs::lowpass_mini().unwrap();
    let session = BistSession::new(&design).unwrap();
    let universe = session.universe();
    let input_bits = design.spec().input_bits;

    let mut generator = Decorrelated::maximal(input_bits, ShiftDirection::LsbToMsb).unwrap();
    let run = session.run(&mut generator, &bist_core::RunConfig::new(256).with_threads(1)).unwrap();
    let detected: Vec<FaultId> = run
        .result
        .detection_cycles()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_some())
        .map(|(i, _)| FaultId(i as u32))
        .collect();
    assert!(detected.len() > 100, "{} detected", detected.len());

    for &id in detected.iter().step_by(detected.len() / 25 + 1) {
        let spec = spec_for(universe, id);
        let outcome = sat::prove_faults(
            design.netlist(),
            input_bits,
            &[spec],
            &sat::PruneConfig { max_conflicts: 20_000 },
        );
        match &outcome.verdicts[0].1 {
            sat::FaultVerdict::Redundant => panic!(
                "engine disagreement: campaign detected fault {id:?} at cycle \
                 {:?} but SAT proved it redundant",
                run.result.detection_cycles()[id.index()]
            ),
            sat::FaultVerdict::Detectable { witness } => {
                assert!(
                    faultsim_confirms(&design, universe, id, witness),
                    "SAT witness for detected fault {id:?} failed faultsim replay"
                );
            }
            sat::FaultVerdict::Unknown => {}
        }
    }

    // The generator's own words are not SAT witnesses, but the replay
    // helper agrees with the campaign verdict on a few detected faults:
    // the input prefix up to the detection cycle diverges the machine.
    let mut regen = Decorrelated::maximal(input_bits, ShiftDirection::LsbToMsb).unwrap();
    let words: Vec<i64> =
        collect_words(&mut regen, 256).iter().map(|&w| design.align_input(w)).collect();
    for &id in detected.iter().take(3) {
        let cycle = run.result.detection_cycles()[id.index()].unwrap() as usize;
        let trace = faultsim::inject::trace_fault(design.netlist(), universe, id, &words[..=cycle]);
        assert!(!trace.divergent_cycles().is_empty(), "fault {id:?} prefix replay");
    }
}
