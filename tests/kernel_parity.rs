//! Walker-vs-kernel differential over every built-in design.
//!
//! The flat structure-of-arrays tape kernel (`faultsim::kernel`) is the
//! default simulation engine behind `BistSession`; the original graph
//! walker is retained behind `RunConfig::with_engine` exactly so this
//! differential can hold the two to bit-identity forever. Each design
//! runs the same campaign under both engines in both response-check
//! modes, and everything externally observable must match: the
//! per-fault detection map, the per-fault signature sets, the
//! good-machine signature, and the coverage figure.
//!
//! Vector counts are tiered so the whole file stays test-suite cheap in
//! debug builds: the three paper designs run short campaigns, the
//! architectural variants (symmetric, carry-save) and LP-MINI run
//! longer ones — between them every `NodeKind` the lowering pass
//! handles is exercised on real elaborated datapaths.

use bist_bench::generator;
use bist_core::session::{BistSession, ResponseCheck, RunConfig};
use bist_core::SimEngine;
use filters::FilterDesign;

/// (design, vectors): the paper designs are big, so they get short
/// campaigns; the small variants can afford longer ones.
fn roster() -> Vec<(FilterDesign, usize)> {
    vec![
        (filters::designs::lowpass().expect("LP"), 96),
        (filters::designs::bandpass().expect("BP"), 96),
        (filters::designs::highpass().expect("HP"), 96),
        (filters::designs::lowpass_symmetric().expect("LP-SYM"), 192),
        (filters::designs::lowpass_carry_save().expect("LP-CSA"), 192),
        (filters::designs::lowpass_mini().expect("LP-MINI"), 384),
    ]
}

#[test]
fn every_design_is_bit_identical_across_engines_in_both_modes() {
    for (design, vectors) in roster() {
        let session = BistSession::new(&design).expect("session");
        for mode in [ResponseCheck::Trace, ResponseCheck::Signature] {
            let base = RunConfig::new(vectors).with_threads(1).with_response_check(mode);
            let mut gen = generator("LFSR-D");
            let walked = session
                .run(&mut *gen, &base.clone().with_engine(SimEngine::Walker))
                .expect("walker run");
            let mut gen = generator("LFSR-D");
            let kernel = session
                .run(&mut *gen, &base.clone().with_engine(SimEngine::Kernel))
                .expect("kernel run");
            let tag = format!("{} x {mode:?}", design.name());
            assert_eq!(
                walked.result.detection_cycles(),
                kernel.result.detection_cycles(),
                "{tag}: per-fault detection map"
            );
            assert_eq!(
                walked.result.signatures(),
                kernel.result.signatures(),
                "{tag}: per-fault signature sets"
            );
            assert_eq!(walked.signature, kernel.signature, "{tag}: good signature");
            assert_eq!(walked.artifact.coverage, kernel.artifact.coverage, "{tag}: coverage");
            assert_eq!(walked.artifact.detected, kernel.artifact.detected, "{tag}: detected");
            assert_eq!(walked.artifact.aliased, kernel.artifact.aliased, "{tag}: aliased");
        }
    }
}

#[test]
fn engines_agree_under_threading_and_stage_boundaries() {
    // The kernel shares one compiled tape across worker threads; make
    // sure sharding and stage scheduling don't perturb it relative to
    // the serial walker.
    let design = filters::designs::lowpass_mini().expect("LP-MINI");
    let session = BistSession::new(&design).expect("session");
    let base = RunConfig::new(512)
        .with_response_check(ResponseCheck::Signature)
        .with_schedule(faultsim::StageSchedule::with_boundaries(vec![128, 384]));
    let mut gen = generator("LFSR-1");
    let reference = session
        .run(&mut *gen, &base.clone().with_threads(1).with_engine(SimEngine::Walker))
        .expect("walker run");
    for threads in [1usize, 3] {
        let mut gen = generator("LFSR-1");
        let run = session
            .run(&mut *gen, &base.clone().with_threads(threads).with_engine(SimEngine::Kernel))
            .expect("kernel run");
        assert_eq!(
            reference.result.detection_cycles(),
            run.result.detection_cycles(),
            "threads={threads}: detection map"
        );
        assert_eq!(reference.signature, run.signature, "threads={threads}: good signature");
        assert_eq!(
            reference.result.signatures(),
            run.result.signatures(),
            "threads={threads}: per-fault signatures"
        );
    }
}
