//! Golden snapshot of the compiled kernel tape for LP-MINI.
//!
//! The tape is the kernel's entire contract with the netlist: the slot
//! allocation, the op stream, the uniform-kind segments, the arithmetic
//! cell index that fault patches address, and the register latch list.
//! Pinning its text dump means any change to the lowering pass — a new
//! op kind, a different slot-numbering rule, a reordered segment — must
//! re-bless this file and be reviewed as a behavior change, not slip
//! through as noise. (Bit-identity of the *results* is held separately
//! by `kernel_parity.rs`; this file pins the *program*.)
//!
//! Regenerate with `BLESS=1 cargo test -p bist-bench --test kernel_golden`.

use faultsim::Tape;

#[test]
fn lp_mini_tape_dump_is_byte_stable() {
    let design = filters::designs::lowpass_mini().expect("LP-MINI elaborates");
    let actual = Tape::compile(design.netlist()).dump();
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/kernel_tape.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {}: {e} (run with BLESS=1)", path.display())
    });
    assert_eq!(
        actual,
        expected,
        "the LP-MINI kernel tape drifted from {}; re-bless with BLESS=1 only if \
         the lowering change is intentional",
        path.display()
    );
}

#[test]
fn tape_dump_is_deterministic_across_compiles() {
    // The dump doubles as the cache key for debugging sessions, so two
    // compiles of the same netlist must render identically.
    let design = filters::designs::lowpass_mini().expect("LP-MINI elaborates");
    let netlist = design.netlist();
    assert_eq!(Tape::compile(netlist).dump(), Tape::compile(netlist).dump());
}
