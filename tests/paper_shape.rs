//! Shape checks against the paper's published results, using the
//! lightweight (analytic) machinery. The heavyweight fault-simulation
//! reproduction of Tables 4-6 lives in the `experiments` binary and in
//! the `#[ignore]`d test at the bottom.

use bist_core::compat::{
    classify_family, compatibility_ratio, paper_generator_spectra, type_compatibility_table,
    Compatibility,
};
use bist_core::variance::{analyze_design, SourceModel};
use tpg::{model, ShiftDirection};

#[test]
fn table3_matches_paper_exactly() {
    use Compatibility::{Good as P, Marginal as M, Poor as N};
    let table = type_compatibility_table(&paper_generator_spectra(1024));
    let expect = [
        ("LFSR-1", [N, M, P]),
        ("LFSR-2", [M, M, P]),
        ("LFSR-D", [P, P, P]),
        ("LFSR-M", [P, P, P]),
        ("Ramp", [P, N, N]),
    ];
    for (name, row) in expect {
        let got = &table.iter().find(|(n, _)| n == name).expect("present").1;
        assert_eq!(got.as_slice(), row.as_slice(), "{name} row");
    }
}

#[test]
fn fig4_spectrum_orderings() {
    // Paper Fig. 4: at low frequency Ramp >> LFSR-D > LFSR-2 > LFSR-1;
    // at high frequency Ramp collapses and LFSR-1 rises above flat.
    let specs = paper_generator_spectra(256);
    let get = |name: &str| &specs.iter().find(|g| g.name == name).expect("generator").spectrum;
    let low = |s: &dsp::spectrum::PowerSpectrum| s.values()[1];
    let high = |s: &dsp::spectrum::PowerSpectrum| s.values()[250];
    assert!(low(get("Ramp")) > 10.0 * low(get("LFSR-D")));
    assert!(low(get("LFSR-D")) > low(get("LFSR-2")));
    assert!(low(get("LFSR-2")) > low(get("LFSR-1")));
    assert!(high(get("LFSR-1")) > high(get("LFSR-D")));
    assert!(high(get("Ramp")) < 1e-3 * high(get("LFSR-D")));
    // LFSR-M flat at variance 1 (0 dB), others at 1/3 (-4.77 dB).
    assert!((get("LFSR-M").mean_power() - 1.0).abs() < 0.01);
    assert!((get("LFSR-1").mean_power() - 1.0 / 3.0).abs() < 0.01);
}

#[test]
fn section7_tap_attenuation_reproduces() {
    // Paper Figs. 6-7: the LFSR-1 signal at an interior tap of the
    // narrowband lowpass is severely attenuated; decorrelation recovers
    // a factor of ~3-4 in standard deviation.
    let d = filters::designs::lowpass().expect("LP design");
    let shaped = analyze_design(
        &d,
        &SourceModel::Shaped { model: model::lfsr1_model(12, ShiftDirection::LsbToMsb) },
    );
    let white = analyze_design(&d, &SourceModel::White { variance: 1.0 / 3.0 });
    let node = d.tap_accumulator(20).expect("tap 20 exists");
    let find = |r: &[bist_core::variance::NodeVariance]| {
        r.iter().find(|x| x.node == node).expect("analyzed").std_dev
    };
    let s_lfsr = find(&shaped);
    let s_white = find(&white);
    let gain = s_white / s_lfsr;
    assert!(s_lfsr < 0.06, "LFSR-1 tap-20 std {s_lfsr}");
    assert!(
        (2.0..8.0).contains(&gain),
        "decorrelation gain {gain} outside the paper's regime (3.4x)"
    );
}

#[test]
fn table1_regime_reproduces() {
    for d in filters::designs::paper_designs().expect("designs") {
        let s = d.netlist().stats();
        assert!((140..=200).contains(&s.arithmetic()), "{} adders {}", d.name(), s.arithmetic());
        assert!((57..=61).contains(&s.registers), "{} regs {}", d.name(), s.registers);
        assert_eq!(d.spec().input_bits, 12);
        assert_eq!(s.width, 16);
    }
}

#[test]
fn family_classifier_is_monotone() {
    // Sanity on the Table 3 classifier itself.
    assert_eq!(classify_family(&[0.8, 0.9, 1.5]), Compatibility::Good);
    assert_eq!(classify_family(&[0.01, 0.02]), Compatibility::Poor);
    assert_eq!(classify_family(&[0.2, 0.5]), Compatibility::Marginal);
}

#[test]
fn compatibility_ratio_tracks_band_position() {
    // The LFSR-1 ratio rises monotonically as a lowpass cutoff moves up
    // out of its null (the physics behind Table 3's design dependence).
    let reference = tpg::spectra::flat(1.0 / 3.0, 512);
    let lfsr1 = tpg::spectra::lfsr1(12, 512);
    let mut prev = 0.0;
    for cutoff in [0.02, 0.05, 0.1, 0.2, 0.3] {
        let h = dsp::firdesign::FirSpec::new(dsp::firdesign::BandKind::Lowpass { cutoff }, 41)
            .design()
            .expect("design");
        let r = compatibility_ratio(&lfsr1, &reference, &h);
        assert!(r > prev, "ratio not increasing at cutoff {cutoff}");
        prev = r;
    }
}

/// The full Section 8 reproduction (Tables 4-6 shape). Takes ~1 minute
/// in release mode; run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "heavy: full 4k-vector fault simulation of all three designs"]
fn section8_shape_reproduces() {
    use bist_core::session::{BistSession, RunConfig};
    let designs = filters::designs::paper_designs().expect("designs");
    let mut missed = std::collections::HashMap::new();
    for d in &designs {
        let session = BistSession::new(d).expect("session");
        for name in ["LFSR-1", "LFSR-D", "LFSR-M", "Ramp"] {
            let mut gen: Box<dyn tpg::TestGenerator> = match name {
                "LFSR-1" => Box::new(tpg::Lfsr1::new(12, ShiftDirection::LsbToMsb).expect("gen")),
                "LFSR-D" => {
                    Box::new(tpg::Decorrelated::maximal(12, ShiftDirection::LsbToMsb).expect("gen"))
                }
                "LFSR-M" => Box::new(tpg::MaxVariance::maximal(12).expect("gen")),
                _ => Box::new(tpg::Ramp::new(12).expect("gen")),
            };
            let run = session.run(&mut *gen, &RunConfig::new(4096)).expect("run");
            missed.insert((d.name().to_string(), name), run.missed());
        }
        if d.name() == "LP" || d.name() == "HP" {
            let mut mixed = tpg::Mixed::lfsr1_then_maxvar(12, 4096).expect("mixed");
            let run = session.run(&mut mixed, &RunConfig::new(8192)).expect("run");
            missed.insert((d.name().to_string(), "mixed"), run.missed());
        }
    }
    let get = |d: &str, g: &str| missed[&(d.to_string(), g)];

    // Paper Table 4 orderings.
    assert!(get("LP", "LFSR-1") > get("LP", "LFSR-D"), "LFSR-1 must lag on LP");
    let hp_ratio = get("HP", "LFSR-1") as f64 / get("HP", "LFSR-D") as f64;
    assert!((0.6..1.6).contains(&hp_ratio), "LFSR-1 ~ LFSR-D on HP, got {hp_ratio}");
    assert!(get("HP", "Ramp") > 3 * get("HP", "LFSR-D"), "Ramp must collapse on HP");
    assert!(get("BP", "Ramp") > 3 * get("BP", "LFSR-D"), "Ramp must collapse on BP");
    for d in ["LP", "BP", "HP"] {
        assert!(
            get(d, "LFSR-M") > 5 * get(d, "LFSR-D"),
            "LFSR-M must be the worst single mode on {d}"
        );
    }
    // Paper Table 6: mixed testing cuts misses ~2-3x over the best
    // single mode.
    for d in ["LP", "HP"] {
        let best = ["LFSR-1", "LFSR-D", "LFSR-M", "Ramp"]
            .iter()
            .map(|g| get(d, g))
            .min()
            .expect("nonempty");
        let ratio = best as f64 / get(d, "mixed").max(1) as f64;
        assert!(ratio > 1.5, "{d}: mixed improvement only {ratio:.2}x");
    }
}
