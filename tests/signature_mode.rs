//! Golden signature-mode results on LP-MINI — the aliasing smoke test
//! behind the `experiments smoke` CI cell.
//!
//! LP-MINI is the 16-tap service-test design: small enough that a full
//! trace-vs-signature double run costs well under a second, real enough
//! (an elaborated CSD datapath with hundreds of collapsed fault
//! classes) that the golden values below pin actual hardware behaviour.
//! Everything here is exact integer arithmetic, so the goldens hold on
//! every platform; if an intentional engine change shifts them, re-read
//! the printed values and update the constants alongside DESIGN.md §10.

use bist_bench::{generator, SECTION8_GENERATORS};
use bist_core::session::{BistSession, ResponseCheck, RunConfig};
use faultsim::StageSchedule;

const VECTORS: usize = 1024;

/// Golden end-of-test results for LP-MINI at 1024 vectors with the
/// default 16-bit MISR: (generator, missed faults, good signature).
const GOLDEN: [(&str, usize, u64); 2] = [("LFSR-1", 23, 0xA9EE), ("LFSR-D", 19, 0x5503)];

fn mini() -> filters::FilterDesign {
    filters::designs::lowpass_mini().expect("LP-MINI elaborates")
}

#[test]
fn lp_mini_signature_mode_matches_goldens_with_zero_aliasing() {
    let d = mini();
    let session = BistSession::new(&d).expect("session");
    for (name, missed, signature) in GOLDEN {
        let mut gen = generator(name);
        let run = session
            .run(&mut *gen, &RunConfig::new(VECTORS).with_response_check(ResponseCheck::Signature))
            .expect("signature run");
        assert_eq!(run.missed(), missed, "{name} missed-fault golden");
        assert_eq!(run.signature, signature, "{name} signature golden");
        assert_eq!(run.artifact.aliased, 0, "{name} must not alias on the 16-bit MISR");
        assert_eq!(
            run.result.signature_detected_count(),
            run.result.detected_count(),
            "{name}: a signature-only tester sees every compare-detected fault"
        );
    }
}

#[test]
fn lp_mini_roster_verdicts_are_identical_in_both_modes() {
    // The whole gated roster (what `experiments smoke` asserts in CI):
    // signature-mode detection cycles, missed counts and good signature
    // must be bit-identical to trace mode, with zero aliased faults.
    let d = mini();
    let session = BistSession::new(&d).expect("session");
    for name in SECTION8_GENERATORS {
        let mut gen = generator(name);
        let trace = session.run(&mut *gen, &RunConfig::new(VECTORS)).expect("trace run");
        let signed = session
            .run(&mut *gen, &RunConfig::new(VECTORS).with_response_check(ResponseCheck::Signature))
            .expect("signature run");
        assert_eq!(
            trace.result.detection_cycles(),
            signed.result.detection_cycles(),
            "{name} detected-fault set"
        );
        assert_eq!(trace.signature, signed.signature, "{name} good signature");
        assert_eq!(signed.artifact.aliased, 0, "{name} aliasing");
        assert_eq!(trace.artifact.response_store_words, VECTORS as u64);
        assert_eq!(signed.artifact.response_store_words, 64);
    }
}

#[test]
fn lp_mini_signature_goldens_hold_at_every_thread_count_and_schedule() {
    // The golden values are schedule- and thread-invariant — the
    // real-design counterpart of the randomized determinism proptest
    // in `crates/faultsim/tests/parallel_vs_serial.rs`.
    let d = mini();
    let session = BistSession::new(&d).expect("session");
    let base = RunConfig::new(VECTORS).with_response_check(ResponseCheck::Signature);
    for (threads, boundaries) in [(1usize, vec![]), (2, vec![100u32, 700]), (4, vec![64, 256, 512])]
    {
        let mut gen = generator("LFSR-D");
        let run = session
            .run(
                &mut *gen,
                &base
                    .clone()
                    .with_threads(threads)
                    .with_schedule(StageSchedule::with_boundaries(boundaries.clone())),
            )
            .expect("signature run");
        assert_eq!(run.signature, 0x5503, "threads={threads} boundaries={boundaries:?}");
        assert_eq!(run.missed(), 19, "threads={threads} boundaries={boundaries:?}");
        assert_eq!(run.artifact.aliased, 0, "threads={threads} boundaries={boundaries:?}");
    }
}
