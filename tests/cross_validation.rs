//! Cross-validation between independent implementations of the same
//! quantities: bit-sliced gate-level simulation vs idealized linear
//! simulation vs direct convolution, analytic spectra vs Welch
//! estimates, and predicted distributions vs histograms.

use dsp::firdesign::BandKind;
use filters::{FilterDesign, FilterSpec};
use tpg::{collect_values, collect_words, ShiftDirection, TestGenerator};

fn design() -> FilterDesign {
    FilterDesign::elaborate(FilterSpec {
        name: "xv".into(),
        band: BandKind::Lowpass { cutoff: 0.12 },
        taps: 16,
        input_bits: 12,
        coef_frac_bits: 14,
        max_csd_digits: 4,
        width: 16,
        kaiser_beta: 5.0,
    })
    .expect("design elaborates")
}

#[test]
fn gate_level_output_matches_float_convolution_within_truncation() {
    // The bit-sliced gate-level machine and an ideal float convolution
    // with the quantized coefficients agree to within accumulated
    // truncation error (one LSB per CSD digit per tap).
    let d = design();
    let mut gen = tpg::IdealWhite::new(12).expect("white");
    let inputs: Vec<i64> = collect_words(&mut gen, 400);
    let aligned: Vec<i64> = inputs.iter().map(|&w| d.align_input(w)).collect();
    let hardware = faultsim::inject::probe_node(d.netlist(), d.output(), &aligned);

    let lsb = d.netlist().format().lsb();
    let x_values: Vec<f64> = inputs.iter().map(|&w| w as f64 / 2048.0).collect();
    let ideal = dsp::conv::filter(&d.impulse_response(), &x_values);

    let digits: usize = d.quantized().iter().map(|q| q.csd.nonzero_digits()).sum();
    let bound = digits as f64 * lsb + 1e-9;
    for (t, (&hw, id)) in hardware.iter().zip(&ideal).enumerate().skip(1) {
        let hw_value = hw as f64 * lsb;
        assert!(
            (hw_value - id).abs() <= bound,
            "cycle {t}: hardware {hw_value} vs ideal {id} (bound {bound})"
        );
    }
}

#[test]
fn linear_sim_matches_quantized_coefficients() {
    // The idealized linear simulator's impulse response equals the
    // quantized coefficient values (delayed by the output register).
    let d = design();
    let h = d.impulse_response();
    assert!(h[0].abs() < 1e-12);
    for (k, q) in d.quantized().iter().enumerate() {
        assert!((h[k + 1] - q.value).abs() < 1e-9, "tap {k}");
    }
}

#[test]
fn analytic_lfsr1_spectrum_matches_welch_estimate() {
    let analytic = tpg::spectra::lfsr1(12, 128);
    let mut gen = tpg::Lfsr1::new(12, ShiftDirection::MsbToLsb).expect("lfsr");
    let x = collect_values(&mut gen, 1 << 14);
    let measured = dsp::spectrum::welch(&x, 256, dsp::window::Window::Hann).expect("welch");
    for k in (8..120).step_by(8) {
        let a = 10.0 * analytic.values()[k].log10();
        let b = 10.0 * measured.values()[k].log10();
        assert!((a - b).abs() < 2.0, "bin {k}: {a:.2} vs {b:.2} dB");
    }
}

#[test]
fn eq1_variance_matches_gate_level_measurement() {
    // Paper Eq. 1 (through the linear model) vs the actual gate-level
    // signal statistics at every accumulator.
    let d = design();
    let g = tpg::model::lfsr1_model(12, ShiftDirection::LsbToMsb);
    let predictions = bist_core::variance::analyze_design(
        &d,
        &bist_core::variance::SourceModel::Shaped { model: g },
    );

    let mut gen = tpg::Lfsr1::new(12, ShiftDirection::LsbToMsb).expect("lfsr");
    let inputs: Vec<i64> =
        collect_words(&mut gen, 4095).into_iter().map(|w| d.align_input(w)).collect();
    let lsb = d.netlist().format().lsb();
    for p in predictions.iter().filter(|p| p.label.contains(".acc")) {
        let samples = faultsim::inject::probe_node(d.netlist(), p.node, &inputs);
        let values: Vec<f64> = samples.iter().map(|&r| r as f64 * lsb).collect();
        let measured = dsp::stats::Summary::of(&values).expect("nonempty").std_dev();
        assert!(
            (p.std_dev - measured).abs() < 0.2 * measured.max(2.0 * lsb),
            "{}: predicted {} vs measured {}",
            p.label,
            p.std_dev,
            measured
        );
    }
}

#[test]
fn predicted_distribution_matches_histogram() {
    let d = design();
    let node = d.output();
    let g = tpg::model::lfsr1_model(12, ShiftDirection::LsbToMsb);
    let theory = bist_core::distribution::predict_lfsr(d.netlist(), node, &g, 1.0 / 512.0);
    let mut gen = tpg::Lfsr1::new(12, ShiftDirection::LsbToMsb).expect("lfsr");
    let inputs: Vec<i64> =
        collect_words(&mut gen, 4095).into_iter().map(|w| d.align_input(w)).collect();
    let hist = bist_core::distribution::simulate_histogram(d.netlist(), node, &inputs, 48);
    let mismatch = bist_core::distribution::density_mismatch(&theory, &hist);
    assert!(mismatch < 0.3, "density mismatch {mismatch}");
}

#[test]
fn misr_signature_flags_every_sampled_fault() {
    // For detected faults, compacting the faulty response must change
    // the MISR signature (no aliasing observed on this sample).
    let d = design();
    let session = bist_core::session::BistSession::new(&d).expect("session");
    let mut gen = tpg::Lfsr1::new(12, ShiftDirection::LsbToMsb).expect("lfsr");
    let vectors = 256usize;
    let run = session.run(&mut gen, &bist_core::session::RunConfig::new(vectors)).expect("run");

    gen.reset();
    let inputs: Vec<i64> = (0..vectors).map(|_| d.align_input(gen.next_word())).collect();
    let mut good_misr = bist_core::misr::Misr::new(16).expect("misr");
    let good = faultsim::inject::probe_node(d.netlist(), d.output(), &inputs);
    good_misr.absorb_all(&good);

    let mut checked = 0;
    for fid in session.universe().ids().take(400) {
        if run.result.detection_cycles()[fid.index()].is_none() {
            continue;
        }
        let trace = faultsim::inject::trace_fault(d.netlist(), session.universe(), fid, &inputs);
        let mut faulty_misr = bist_core::misr::Misr::new(16).expect("misr");
        faulty_misr.absorb_all(&trace.faulty);
        assert_ne!(
            faulty_misr.signature(),
            good_misr.signature(),
            "aliased fault {}",
            session.universe().site(fid)
        );
        checked += 1;
    }
    assert!(checked > 50, "too few detected faults sampled: {checked}");
}
