//! Cross-crate integration: the full pipeline from filter spec to
//! fault-simulation results, exercised end to end on small designs.

use bist_core::session::{BistSession, RunConfig};
use dsp::firdesign::BandKind;
use filters::{FilterDesign, FilterSpec};
use tpg::{Decorrelated, Lfsr1, MaxVariance, Mixed, Ramp, ShiftDirection, TestGenerator};

fn design(cutoff: f64, taps: usize) -> FilterDesign {
    FilterDesign::elaborate(FilterSpec {
        name: format!("lp{taps}"),
        band: BandKind::Lowpass { cutoff },
        taps,
        input_bits: 12,
        coef_frac_bits: 14,
        max_csd_digits: 4,
        width: 16,
        kaiser_beta: 5.0,
    })
    .expect("design elaborates")
}

#[test]
fn pipeline_produces_consistent_universe_and_results() {
    let d = design(0.12, 18);
    let session = BistSession::new(&d).expect("session");
    assert!(session.universe().len() > 1000);
    assert!(session.universe().uncollapsed_len() > session.universe().len());

    let mut gen = Decorrelated::maximal(12, ShiftDirection::LsbToMsb).expect("generator");
    let run = session.run(&mut gen, &RunConfig::new(768)).expect("run");
    assert!(run.coverage() > 0.9, "coverage {}", run.coverage());

    // Detection cycles are within the run and consistent with counts.
    let detected = run.result.detection_cycles().iter().filter_map(|&c| c).collect::<Vec<_>>();
    assert_eq!(detected.len() + run.missed(), session.universe().len());
    assert!(detected.iter().all(|&c| c < 768));
}

#[test]
fn all_generators_run_and_are_reproducible() {
    let d = design(0.15, 14);
    let session = BistSession::new(&d).expect("session");
    let gens: Vec<Box<dyn TestGenerator>> = vec![
        Box::new(Lfsr1::new(12, ShiftDirection::LsbToMsb).expect("lfsr1")),
        Box::new(Decorrelated::maximal(12, ShiftDirection::LsbToMsb).expect("lfsrd")),
        Box::new(MaxVariance::maximal(12).expect("lfsrm")),
        Box::new(Ramp::new(12).expect("ramp")),
    ];
    for mut gen in gens {
        let a = session.run(&mut *gen, &RunConfig::new(256)).expect("run");
        let b = session.run(&mut *gen, &RunConfig::new(256)).expect("run");
        assert_eq!(a.missed(), b.missed(), "{} not reproducible", gen.name());
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.result.detection_cycles(), b.result.detection_cycles());
    }
}

#[test]
fn mixed_mode_beats_or_matches_both_single_modes() {
    let d = design(0.08, 20);
    let session = BistSession::new(&d).expect("session");
    let mut normal = Lfsr1::new(12, ShiftDirection::LsbToMsb).expect("lfsr1");
    let mut maxvar = MaxVariance::maximal(12).expect("lfsrm");
    let mut mixed = Mixed::lfsr1_then_maxvar(12, 1024).expect("mixed");
    let miss_normal = session.run(&mut normal, &RunConfig::new(1024)).expect("run").missed();
    let miss_maxvar = session.run(&mut maxvar, &RunConfig::new(1024)).expect("run").missed();
    let miss_mixed = session.run(&mut mixed, &RunConfig::new(2048)).expect("run").missed();
    assert!(
        miss_mixed <= miss_normal.min(miss_maxvar),
        "mixed {miss_mixed} vs normal {miss_normal} / maxvar {miss_maxvar}"
    );
}

#[test]
fn longer_tests_never_lose_coverage() {
    let d = design(0.1, 16);
    let session = BistSession::new(&d).expect("session");
    let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).expect("lfsr1");
    let long = session.run(&mut gen, &RunConfig::new(1024)).expect("run");
    let mut prev = 0.0;
    for c in [32u32, 64, 128, 256, 512, 1024] {
        let cov = long.result.coverage_after(c);
        assert!(cov >= prev, "coverage dropped at {c}");
        prev = cov;
    }
}

#[test]
fn missed_fault_reports_cover_all_misses() {
    let d = design(0.1, 16);
    let session = BistSession::new(&d).expect("session");
    let mut gen = Ramp::new(12).expect("ramp");
    let run = session.run(&mut gen, &RunConfig::new(512)).expect("run");
    let by_node = faultsim::report::missed_by_node(
        d.netlist(),
        session.universe(),
        session.ranges(),
        &run.result,
    );
    let total: usize = by_node.iter().map(|s| s.missed.len()).sum();
    assert_eq!(total, run.missed());
    let by_depth = faultsim::report::missed_by_depth(
        d.netlist(),
        session.universe(),
        session.ranges(),
        &run.result,
    );
    assert_eq!(by_depth.values().sum::<usize>(), run.missed());
}

#[test]
fn injection_traces_agree_with_detection_results() {
    // A fault detected by the simulator must show a divergent trace on
    // the same input sequence, and vice versa.
    let d = design(0.15, 10);
    let session = BistSession::new(&d).expect("session");
    let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).expect("lfsr1");
    let vectors = 128usize;
    let run = session.run(&mut gen, &RunConfig::new(vectors)).expect("run");

    gen.reset();
    let inputs: Vec<i64> = (0..vectors).map(|_| d.align_input(gen.next_word())).collect();
    for fid in session.universe().ids().take(200) {
        let trace = faultsim::inject::trace_fault(d.netlist(), session.universe(), fid, &inputs);
        let diverges = !trace.divergent_cycles().is_empty();
        let detected = run.result.detection_cycles()[fid.index()].is_some();
        assert_eq!(
            diverges,
            detected,
            "fault {} trace/detection mismatch",
            session.universe().site(fid)
        );
        if let Some(cycle) = run.result.detection_cycles()[fid.index()] {
            assert_eq!(trace.divergent_cycles()[0] as u32, cycle);
        }
    }
}
