//! Generator selection for the paper's three designs: rate each of the
//! five standard BIST generators against each filter, print the
//! compatibility table, and show the recommended scheme.
//!
//! ```text
//! cargo run --release --example generator_selection
//! ```

use bist_core::compat::{paper_generator_spectra, type_compatibility_table};
use bist_core::selection::{rate_generators, recommend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Table 3, computed from analytic generator spectra and
    // families of band placements.
    println!("compatibility by filter type (+ good / ± design-dependent / − poor):\n");
    let table = type_compatibility_table(&paper_generator_spectra(1024));
    println!("{:8} {:>8} {:>8} {:>8}", "", "Lowpass", "Bandpass", "Highpass");
    for (name, row) in &table {
        println!(
            "{:8} {:>8} {:>8} {:>8}",
            name,
            row[0].to_string(),
            row[1].to_string(),
            row[2].to_string()
        );
    }

    // Per-design ratings and recommendations.
    for design in filters::designs::paper_designs()? {
        println!("\n== {} ==", design.name());
        for r in rate_generators(&design, 512) {
            println!(
                "  {:7} predicted output-variance ratio {:6.4}  [{}]",
                r.name, r.ratio, r.compatibility
            );
        }
        let rec = recommend(&design);
        println!(
            "  recommended scheme: {} normal-mode vectors, then maximum-variance mode{}",
            rec.primary,
            if rec.add_max_variance_phase { " (mixed test)" } else { "" }
        );
    }
    Ok(())
}
