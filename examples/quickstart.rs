//! Quickstart: design a filter, check generator compatibility, run a
//! BIST session, read the results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bist_core::compat::{classify, output_variance};
use bist_core::session::{BistSession, RunConfig};
use dsp::firdesign::BandKind;
use filters::{FilterDesign, FilterSpec};
use tpg::{Decorrelated, ShiftDirection, TestGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Design a 24-tap narrowband lowpass filter in hardware: Kaiser
    //    prototype -> CSD-quantized coefficients -> ripple-carry netlist.
    let design = FilterDesign::elaborate(FilterSpec {
        name: "demo-lp".into(),
        band: BandKind::Lowpass { cutoff: 0.08 },
        taps: 24,
        input_bits: 12,
        coef_frac_bits: 14,
        max_csd_digits: 4,
        width: 16,
        kaiser_beta: 5.0,
    })?;
    let stats = design.netlist().stats();
    println!(
        "design: {} taps, {} adders/subtractors, {} registers, {}-bit datapath",
        design.taps(),
        stats.arithmetic(),
        stats.registers,
        stats.width
    );

    // 2. Frequency-domain compatibility check: is a plain Type 1 LFSR a
    //    good test generator for this filter?
    let h = design.coefficients();
    let lfsr1 = tpg::spectra::lfsr1(12, 512);
    let reference = tpg::spectra::flat(1.0 / 3.0, 512);
    let rating = classify(output_variance(&lfsr1, &h), output_variance(&reference, &h));
    println!("Type 1 LFSR compatibility with this filter: {rating}");

    // 3. Run a BIST session with a decorrelated LFSR (spectrum-flat).
    let session = BistSession::new(&design)?;
    println!(
        "fault universe: {} collapsed classes ({} uncollapsed stuck-at faults)",
        session.universe().len(),
        session.universe().uncollapsed_len()
    );
    let mut gen = Decorrelated::maximal(12, ShiftDirection::LsbToMsb)?;
    let run = session.run(&mut gen, &RunConfig::new(2048))?;
    println!(
        "{}: coverage {:.2}% after {} vectors ({} faults missed), signature {:#06x}",
        gen.name(),
        100.0 * run.coverage(),
        run.result.total_cycles(),
        run.missed(),
        run.signature
    );

    // 4. Every run carries a structured artifact: stage timings, the
    //    missed-fault census by difficult-test class, engine counters.
    println!("\n{}", run.artifact.summary());
    Ok(())
}
