//! The paper's Section 9 scheme: a Type 1 LFSR switched into
//! maximum-variance mode partway through the test covers faults neither
//! mode reaches alone, at almost no hardware cost.
//!
//! ```text
//! cargo run --release --example mixed_mode_bist
//! ```

use bist_core::session::{BistSession, RunConfig};
use dsp::firdesign::BandKind;
use filters::{FilterDesign, FilterSpec};
use tpg::{Lfsr1, MaxVariance, Mixed, ShiftDirection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = FilterDesign::elaborate(FilterSpec {
        name: "lp".into(),
        band: BandKind::Lowpass { cutoff: 0.06 },
        taps: 24,
        input_bits: 12,
        coef_frac_bits: 15,
        max_csd_digits: 4,
        width: 16,
        kaiser_beta: 5.5,
    })?;
    let session = BistSession::new(&design)?;
    const HALF: usize = 2048;

    // Single-mode baselines.
    let mut normal = Lfsr1::new(12, ShiftDirection::LsbToMsb)?;
    let run_normal = session.run(&mut normal, &RunConfig::new(HALF))?;
    let mut maxvar = MaxVariance::maximal(12)?;
    let run_maxvar = session.run(&mut maxvar, &RunConfig::new(HALF))?;

    // The mixed test: same LFSR, switched to max-variance mode halfway.
    let mut mixed = Mixed::lfsr1_then_maxvar(12, HALF as u64)?;
    let run_mixed = session.run(&mut mixed, &RunConfig::new(2 * HALF))?;

    println!("design: {} faults in the universe", session.universe().len());
    println!(
        "{:12} misses {:5}  coverage {:6.2}%",
        "LFSR-1",
        run_normal.missed(),
        100.0 * run_normal.coverage()
    );
    println!(
        "{:12} misses {:5}  coverage {:6.2}%",
        "LFSR-M",
        run_maxvar.missed(),
        100.0 * run_maxvar.coverage()
    );
    println!(
        "{:12} misses {:5}  coverage {:6.2}%",
        "mixed",
        run_mixed.missed(),
        100.0 * run_mixed.coverage()
    );

    let best_single = run_normal.missed().min(run_maxvar.missed());
    println!(
        "mixed testing reduces the untested faults by {:.1}x over the best single mode",
        best_single as f64 / run_mixed.missed().max(1) as f64
    );

    // The mixed run's structured artifact: stage timings and the
    // missed-fault census by difficult-test class.
    println!("\n{}", run_mixed.artifact.summary());
    Ok(())
}
