//! The paper's Section 5 case study in miniature: a fault missed by a
//! high-coverage LFSR test is excited by an ordinary sine input —
//! "when 99% isn't enough".
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use bist_core::session::{BistSession, RunConfig};
use dsp::firdesign::BandKind;
use filters::{FilterDesign, FilterSpec};
use tpg::{Lfsr1, ShiftDirection, Sine, TestGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A narrowband lowpass — the shape a Type 1 LFSR feeds worst.
    let design = FilterDesign::elaborate(FilterSpec {
        name: "lp".into(),
        band: BandKind::Lowpass { cutoff: 0.05 },
        taps: 28,
        input_bits: 12,
        coef_frac_bits: 15,
        max_csd_digits: 4,
        width: 16,
        kaiser_beta: 5.5,
    })?;
    let session = BistSession::new(&design)?;

    // Run the standard LFSR BIST.
    let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb)?;
    let run = session.run(&mut gen, &RunConfig::new(4096))?;
    println!(
        "LFSR-1 test: {:.2}% coverage, {} faults missed",
        100.0 * run.coverage(),
        run.missed()
    );

    // A sine well inside the filter's operating parameters.
    let mut sine = Sine::new(12, 0.85, 0.012)?;
    let inputs: Vec<i64> = (0..2048).map(|_| design.align_input(sine.next_word())).collect();

    // How many of the "missed" faults does this single ordinary signal
    // excite? Any nonzero answer is a serious test escape.
    let mut serious = 0usize;
    let mut worst: Option<(faultsim::FaultId, i64)> = None;
    for fid in run.result.missed() {
        let trace =
            faultsim::inject::trace_fault(design.netlist(), session.universe(), fid, &inputs);
        let peak = trace.peak_error();
        if peak > 0 {
            serious += 1;
            if worst.is_none_or(|(_, p)| peak > p) {
                worst = Some((fid, peak));
            }
        }
    }
    println!(
        "{} of the {} missed faults are excited by one 0.85-amplitude sine",
        serious,
        run.missed()
    );
    if let Some((fid, peak)) = worst {
        let site = session.universe().site(fid);
        let label = &design.netlist().node(site.node).label;
        println!(
            "worst escape: {site} in {label}, output error up to {:.4} of full scale",
            peak as f64 * design.netlist().format().lsb()
        );
        println!("(the paper's Fig. 2 spike train is exactly this effect)");
    }
    Ok(())
}
